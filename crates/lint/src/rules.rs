//! The rule engine: eleven workspace invariants plus the allow-annotation
//! escape hatch (thirteen rule ids in all).
//!
//! Since dcn-lint v2 the engine is **two-pass** (DESIGN.md §14). Pass 1
//! builds a [`WorkspaceIndex`](crate::index::WorkspaceIndex) over the
//! lossy per-file scan: `fn` bodies, identifiers declared with
//! `Mutex`/`RwLock`/`Atomic*` types, and the `dcn_guard::env` registry.
//! Pass 2 runs the rules against that index, split into
//! [`per_file_diags`] (pure per file, fanned out by the driver over a
//! `dcn_exec::Pool` and merged in input order) and [`cross_file_diags`]
//! (registry liveness checks that need the whole file set; run serially).
//!
//! Every rule emits [`Diagnostic`]s anchored to `file:line`. A diagnostic
//! can be suppressed by an inline annotation on the same line or the line
//! directly above:
//!
//! ```text
//! // dcn-lint: allow(<rule-id>) — why this site is exempt
//! ```
//!
//! The justification after the rule name is mandatory (at least
//! [`MIN_JUSTIFICATION`] characters); an allow without one is itself a
//! violation (`allow-justification`), and an allow that suppresses
//! nothing is reported as `unused-allow` so stale annotations cannot
//! accumulate.

use crate::index::{self, FileIndex, WorkspaceIndex};
use crate::scan::{match_brace, word_occurrences, SourceFile};

/// Diagnostic severity. Every built-in rule is `Error`; `Warn` exists so
/// downstream forks can soft-launch a new rule before enforcing it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Fails the run under `--deny`.
    Error,
    /// Reported but never fails the run.
    Warn,
}

/// One finding, anchored to a file and 1-based line.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Rule identifier (e.g. `panic-freedom`).
    pub rule: &'static str,
    /// Severity (see [`Severity`]).
    pub severity: Severity,
    /// Path relative to the lint root.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Human-readable description of the violation.
    pub message: String,
}

/// Rule metadata for `--list-rules` and documentation.
pub struct RuleInfo {
    /// Rule identifier.
    pub id: &'static str,
    /// Default severity.
    pub severity: Severity,
    /// One-line description.
    pub summary: &'static str,
}

/// The built-in rule set.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "panic-freedom",
        severity: Severity::Error,
        summary: "no unwrap/expect/panic!/unreachable!/todo!/unimplemented! in solver/obs/trace library code",
    },
    RuleInfo {
        id: "float-eq",
        severity: Severity::Error,
        summary: "no ==/!= against float literals in solver code; use dcn_guard::tol helpers",
    },
    RuleInfo {
        id: "budget-coverage",
        severity: Severity::Error,
        summary: "pub fns with loop/while in solver crates take a &Budget or &SolveCtx parameter; \
                  no legacy (cache, budget) twin tails",
    },
    RuleInfo {
        id: "metric-registry",
        severity: Severity::Error,
        summary: "metric/span names come from dcn_obs::names constants; constants must be used",
    },
    RuleInfo {
        id: "nondeterminism",
        severity: Severity::Error,
        summary: "clocks only in guard/obs/exec/trace/fleet; threads only in exec; processes only \
                  in fleet; no unseeded RNG outside tests",
    },
    RuleInfo {
        id: "unsafe-forbid",
        severity: Severity::Error,
        summary: "every crate root carries #![forbid(unsafe_code)]",
    },
    RuleInfo {
        id: "doc-coverage",
        severity: Severity::Error,
        summary: "crate roots carry //! docs; pub fn/struct/enum in library code carry /// docs",
    },
    RuleInfo {
        id: "lock-order",
        severity: Severity::Error,
        summary: "nested guard acquisitions follow the declared order \
                  REGISTRY → SPANS → drained → shards (shard self-nesting only in cache)",
    },
    RuleInfo {
        id: "blocking-under-lock",
        severity: Severity::Error,
        summary: "no file I/O, process spawns, sleeps, or channel recv while a lock guard \
                  is live in obs/trace/cache/exec/fleet",
    },
    RuleInfo {
        id: "atomic-ordering",
        severity: Severity::Error,
        summary: "every atomic load/store/swap/fetch_*/compare_exchange names a literal \
                  Ordering; SeqCst outside exec/fleet needs a justified allow",
    },
    RuleInfo {
        id: "env-registry",
        severity: Severity::Error,
        summary: "env reads go through dcn_guard::env constants; registered vars must be \
                  DCN_-named, unique, live, and mirrored in the README table",
    },
    RuleInfo {
        id: "allow-justification",
        severity: Severity::Error,
        summary: "every dcn-lint allow annotation carries a written justification",
    },
    RuleInfo {
        id: "unused-allow",
        severity: Severity::Error,
        summary: "allow annotations that suppress nothing must be removed",
    },
];

/// Crates whose library code must be panic-free, tolerance-disciplined,
/// and budget-covered (the solver crates of the TUB pipeline).
pub const SOLVER_CRATES: &[&str] = &[
    "lp",
    "mcf",
    "graph",
    "match",
    "partition",
    "core",
    "estimators",
];

/// Crates additionally held to panic-freedom beyond the solver set:
/// observability code runs inside every solver call path (span guards,
/// trace sinks) and must never be the thing that aborts a run — a
/// poisoned metrics mutex, for example, must recover, not cascade.
pub const PANIC_FREE_EXTRA_CRATES: &[&str] = &["obs", "trace"];

/// Crates allowed to read wall clocks: `guard` (deadlines) and `obs`
/// (span timing) exist to encapsulate time, `exec` re-checks budget
/// deadlines between pool tasks, `trace` timestamps trace events
/// against its process-wide monotonic origin, and `fleet` measures
/// worker leases and retry backoff against real wall time.
pub const CLOCK_CRATES: &[&str] = &["guard", "obs", "exec", "trace", "fleet"];

/// The one crate allowed to spawn OS threads. Every other crate reaches
/// parallelism through [`dcn_exec`]'s deterministic pool, so fan-out
/// cannot silently reorder merges or leak thread-count dependence.
pub const THREAD_CRATES: &[&str] = &["exec"];

/// The one crate allowed to spawn OS processes. Multi-process fan-out
/// goes through [`dcn_fleet`]'s supervised queue (leases, bounded retry,
/// quarantine, input-order merge); ad-hoc `Command` use elsewhere would
/// escape crash detection and the determinism contract the same way
/// ad-hoc threads would escape the pool's ordered merge.
pub const PROC_CRATES: &[&str] = &["fleet"];

/// The workspace's declared global lock-acquisition order, outermost
/// first: the obs metric registry, then the obs span table, then the
/// trace drain buffer, then a cache shard (DESIGN.md §14). A nested
/// acquisition must name a strictly later symbol than every guard still
/// live around it. Ranks are indices into this table.
pub const LOCK_ORDER: &[&str] = &["REGISTRY", "SPANS", "drained", "shards"];

/// Crates scanned by the guard-region rules (`lock-order` and
/// `blocking-under-lock`): the concurrent service crates that own or
/// drive the ordered locks. Solver crates hold no locks at all (the
/// nondeterminism rule already keeps threads out of them).
pub const LOCK_CRATES: &[&str] = &["obs", "trace", "cache", "exec", "fleet"];

/// Crates allowed to use `Ordering::SeqCst`: only the fan-out engines,
/// where cross-thread shutdown handoff could conceivably need it. The
/// workspace's other atomics are monotone counters and latched flags,
/// for which `Relaxed` (or `Acquire`/`Release` for payload handoff) is
/// sufficient — a stray `SeqCst` usually hides a missing happens-before
/// argument rather than supplying one.
pub const SEQCST_CRATES: &[&str] = &["exec", "fleet"];

/// Minimum justification length (characters after the allow's rule list).
pub const MIN_JUSTIFICATION: usize = 8;

const ANNOTATION: &str = "dcn-lint: allow(";

/// A parsed `// dcn-lint: allow(rule, …) — justification` annotation.
#[derive(Debug)]
pub struct Allow {
    file_idx: usize,
    line: usize,
    rules: Vec<String>,
    justified: bool,
    used: std::cell::Cell<bool>,
}

/// Scans every file for allow annotations.
///
/// An occurrence only counts as an annotation when it (a) sits inside a
/// comment — masked out by the scanner but not part of a string literal —
/// and (b) names at least one known rule id. Both filters exist so the
/// linter can lint its own sources: doc-comment examples use placeholder
/// rule names and test corpora embed annotations in string literals.
pub fn collect_allows(files: &[SourceFile]) -> Vec<Allow> {
    let mut allows = Vec::new();
    for (fi, f) in files.iter().enumerate() {
        let mut from = 0;
        while let Some(p) = f.raw[from..].find(ANNOTATION) {
            let at = from + p;
            from = at + ANNOTATION.len();
            let in_string = f
                .strings
                .iter()
                .any(|s| s.start < at && at < s.start + 1 + s.value.len());
            let in_comment = f.masked.as_bytes()[at] == b' ' && !in_string;
            if !in_comment {
                continue;
            }
            let line_end = f.raw[at..].find('\n').map_or(f.raw.len(), |e| at + e);
            let after = &f.raw[at + ANNOTATION.len()..line_end];
            let Some(close) = after.find(')') else {
                continue;
            };
            let rules: Vec<String> = after[..close]
                .split(',')
                .map(|r| r.trim().to_string())
                .filter(|r| RULES.iter().any(|info| info.id == r))
                .collect();
            if rules.is_empty() {
                continue;
            }
            let justification = after[close + 1..]
                .trim_start_matches([' ', '\t', '—', '-', ':', '–'])
                .trim();
            allows.push(Allow {
                file_idx: fi,
                line: f.line_of(at),
                rules,
                justified: justification.chars().count() >= MIN_JUSTIFICATION,
                used: std::cell::Cell::new(false),
            });
        }
    }
    allows
}

/// Result of running all rules over a scanned file set.
pub struct Outcome {
    /// Surviving diagnostics, sorted by (file, line, rule).
    pub diagnostics: Vec<Diagnostic>,
    /// Number of justified allow annotations that suppressed a finding.
    pub allows_honored: usize,
}

/// Runs every rule serially, applies allow annotations, and appends the
/// annotation-hygiene diagnostics. Convenience entry point for tests and
/// embedders; the CLI driver ([`crate::lint_root`]) instead builds the
/// index once, fans [`per_file_diags`] out over a pool, and passes the
/// README through for the drift check.
pub fn run_all(files: &[SourceFile]) -> Outcome {
    run_all_with(files, None)
}

/// [`run_all`] with an optional README text for the env-table drift check.
pub fn run_all_with(files: &[SourceFile], readme: Option<&str>) -> Outcome {
    let index = WorkspaceIndex::build(files, files.iter().map(index::index_file).collect());
    let mut raw = Vec::new();
    for (fi, f) in files.iter().enumerate() {
        raw.extend(per_file_diags(f, fi, &index));
    }
    raw.extend(cross_file_diags(files, &index, readme));
    finish(files, raw)
}

/// Pass 2, per-file portion: every rule whose verdict depends only on one
/// file plus the read-only pass-1 index. A pure function of its inputs,
/// so the driver can evaluate files concurrently and concatenate the
/// results in input order without changing the report.
pub fn per_file_diags(f: &SourceFile, fi: usize, index: &WorkspaceIndex) -> Vec<Diagnostic> {
    let one = std::slice::from_ref(f);
    let mut d = Vec::new();
    panic_freedom(one, &mut d);
    float_eq(one, &mut d);
    budget_coverage_file(f, &index.files[fi], &mut d);
    nondeterminism(one, &mut d);
    unsafe_forbid(one, &mut d);
    doc_coverage(one, &mut d);
    lock_order(f, index, &mut d);
    blocking_under_lock(f, index, &mut d);
    atomic_ordering(f, index, &mut d);
    d
}

/// Pass 2, cross-file portion: the registry rules, which relate
/// definition sites to every use site in the tree (both directions) and
/// so cannot be evaluated one file at a time.
pub fn cross_file_diags(
    files: &[SourceFile],
    index: &WorkspaceIndex,
    readme: Option<&str>,
) -> Vec<Diagnostic> {
    let mut d = Vec::new();
    metric_registry(files, &mut d);
    env_registry(files, index, readme, &mut d);
    d
}

/// Applies allow annotations to the raw findings, appends the
/// annotation-hygiene diagnostics, and sorts/dedups into the final
/// report order.
pub fn finish(files: &[SourceFile], raw_diags: Vec<Diagnostic>) -> Outcome {
    let allows = collect_allows(files);
    let file_index = |rel: &str| files.iter().position(|f| f.rel == rel);
    let mut diagnostics = Vec::new();
    let mut allows_honored = 0usize;
    for d in raw_diags {
        let fi = file_index(&d.file);
        // A same-line annotation takes precedence over one on the line above.
        let matches_at = |a: &&Allow, line: usize| {
            Some(a.file_idx) == fi && a.line == line && a.rules.iter().any(|r| r == d.rule)
        };
        let allow = allows
            .iter()
            .find(|a| matches_at(a, d.line))
            .or_else(|| allows.iter().find(|a| matches_at(a, d.line.saturating_sub(1))));
        match allow {
            Some(a) if a.justified => {
                if !a.used.get() {
                    allows_honored += 1;
                }
                a.used.set(true);
            }
            Some(a) => {
                // Unjustified allow: the annotation "uses" itself (so it is
                // not double-reported as unused) but the finding survives
                // alongside an allow-justification error.
                a.used.set(true);
                diagnostics.push(Diagnostic {
                    rule: "allow-justification",
                    severity: Severity::Error,
                    file: d.file.clone(),
                    line: a.line,
                    message: format!(
                        "allow({}) has no written justification (need ≥ {MIN_JUSTIFICATION} chars)",
                        d.rule
                    ),
                });
                diagnostics.push(d);
            }
            None => diagnostics.push(d),
        }
    }
    for a in &allows {
        if !a.used.get() {
            diagnostics.push(Diagnostic {
                rule: "unused-allow",
                severity: Severity::Error,
                file: files[a.file_idx].rel.clone(),
                line: a.line,
                message: format!(
                    "allow({}) suppresses nothing; remove the stale annotation",
                    a.rules.join(", ")
                ),
            });
        }
    }
    diagnostics.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule))
    });
    diagnostics.dedup_by(|a, b| a.file == b.file && a.line == b.line && a.rule == b.rule);
    Outcome {
        diagnostics,
        allows_honored,
    }
}

fn push(diags: &mut Vec<Diagnostic>, rule: &'static str, f: &SourceFile, off: usize, msg: String) {
    diags.push(Diagnostic {
        rule,
        severity: Severity::Error,
        file: f.rel.clone(),
        line: f.line_of(off),
        message: msg,
    });
}

/// True when this file is library code of a solver crate (rules 1–3 scope).
fn solver_library(f: &SourceFile) -> bool {
    f.krate
        .as_deref()
        .is_some_and(|k| SOLVER_CRATES.contains(&k))
        && !f.is_test_code
        && !f.is_bin
}

/// True when this file is in panic-freedom scope: solver library code
/// plus the [`PANIC_FREE_EXTRA_CRATES`] observability crates.
fn panic_free_library(f: &SourceFile) -> bool {
    solver_library(f)
        || (f.krate
            .as_deref()
            .is_some_and(|k| PANIC_FREE_EXTRA_CRATES.contains(&k))
            && !f.is_test_code
            && !f.is_bin)
}

// ---------------------------------------------------------------------------
// Rule: panic-freedom

fn panic_freedom(files: &[SourceFile], diags: &mut Vec<Diagnostic>) {
    // (needle, must be followed by, description)
    const METHODS: &[(&str, &str)] = &[(".unwrap", "()"), (".expect", "(")];
    const MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];
    for f in files.iter().filter(|f| panic_free_library(f)) {
        for &(m, follow) in METHODS {
            let mut from = 0;
            while let Some(p) = f.masked[from..].find(m) {
                let at = from + p;
                from = at + m.len();
                if !f.masked[from..].starts_with(follow) || f.in_test_region(at) {
                    continue;
                }
                push(
                    diags,
                    "panic-freedom",
                    f,
                    at,
                    format!(
                        "`{m}{follow}…` in panic-free library code (solver crates + \
                         obs/trace); return a typed error (see dcn-guard), recover \
                         (e.g. Mutex poison via into_inner), or annotate with a \
                         justified allow"
                    ),
                );
            }
        }
        for &m in MACROS {
            for at in word_occurrences(&f.masked, m) {
                if !f.masked[at + m.len()..].starts_with('!') || f.in_test_region(at) {
                    continue;
                }
                push(
                    diags,
                    "panic-freedom",
                    f,
                    at,
                    format!(
                        "`{m}!` in panic-free library code; propagate a Result instead"
                    ),
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Rule: float-eq

/// True when `tok` looks like a float literal: starts with a digit and has
/// a decimal point, an exponent, or an explicit f32/f64 suffix.
fn is_float_literal(tok: &str) -> bool {
    let t = tok.trim_end_matches(')').trim_start_matches('(');
    let mut chars = t.chars();
    let Some(first) = chars.next() else {
        return false;
    };
    if !first.is_ascii_digit() {
        return false;
    }
    t.contains('.') || t.ends_with("f32") || t.ends_with("f64") || {
        // 1e-9 exponent form
        t.bytes()
            .zip(t.bytes().skip(1))
            .any(|(a, b)| (a == b'e' || a == b'E') && (b.is_ascii_digit() || b == b'-'))
    }
}

fn float_eq(files: &[SourceFile], diags: &mut Vec<Diagnostic>) {
    for f in files.iter().filter(|f| solver_library(f)) {
        let b = f.masked.as_bytes();
        for op in ["==", "!="] {
            let mut from = 0;
            while let Some(p) = f.masked[from..].find(op) {
                let at = from + p;
                from = at + op.len();
                // Exclude <=, >=, =>, === (not Rust, but cheap to guard).
                let prev = at.checked_sub(1).map(|i| b[i]);
                if matches!(prev, Some(b'<' | b'>' | b'=' | b'!')) || b.get(at + 2) == Some(&b'=') {
                    continue;
                }
                if f.in_test_region(at) {
                    continue;
                }
                // Token to the right.
                let right: String = f.masked[at + op.len()..]
                    .trim_start()
                    .chars()
                    .take_while(|c| !c.is_whitespace() && *c != ';' && *c != ',' && *c != '{')
                    .collect();
                // Token to the left.
                let left_end = f.masked[..at].trim_end().len();
                let left_start = f.masked[..left_end]
                    .rfind(|c: char| c.is_whitespace() || c == '(' || c == ',')
                    .map_or(0, |i| i + 1);
                let left = &f.masked[left_start..left_end];
                if is_float_literal(&right) || is_float_literal(left) {
                    push(
                        diags,
                        "float-eq",
                        f,
                        at,
                        format!(
                            "exact `{op}` against a float literal; throughputs are only \
                             meaningful to a tolerance — use dcn_guard::tol::approx_eq/approx_zero"
                        ),
                    );
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Rule: budget-coverage

/// Serial wrapper over [`budget_coverage_file`] (tests and embedders);
/// the driver passes the pass-1 index instead of re-deriving it.
#[cfg(test)]
fn budget_coverage(files: &[SourceFile], diags: &mut Vec<Diagnostic>) {
    for f in files {
        budget_coverage_file(f, &index::index_file(f), diags);
    }
}

fn budget_coverage_file(f: &SourceFile, fidx: &FileIndex, diags: &mut Vec<Diagnostic>) {
    if !solver_library(f) {
        return;
    }
    for def in &fidx.fns {
        if !def.is_pub || f.in_test_region(def.sig_start) {
            continue;
        }
        let sig = &f.masked[def.sig_start..def.body_start];
        // The pre-SolveCtx twin tail: a signature taking both a cache
        // handle and a budget by hand. One parameter (`&SolveCtx`) now
        // carries both; any survivor is a migration leftover.
        if sig.contains("CacheHandle") && sig.contains("Budget") {
            push(
                diags,
                "budget-coverage",
                f,
                def.sig_start,
                format!(
                    "`pub fn {}` takes the legacy `(cache: &CacheHandle, \
                     budget: &Budget)` twin tail; collapse it into a single \
                     `ctx: &SolveCtx` parameter (dcn_cache::SolveCtx)",
                    def.name
                ),
            );
            continue;
        }
        let body = &f.masked[def.body_start..def.body_end];
        let has_loop = !word_occurrences(body, "while").is_empty()
            || word_occurrences(body, "loop")
                .iter()
                .any(|&p| body[p + 4..].trim_start().starts_with('{'));
        if !has_loop || sig.contains("Budget") || sig.contains("SolveCtx") {
            continue;
        }
        push(
            diags,
            "budget-coverage",
            f,
            def.sig_start,
            format!(
                "`pub fn {}` contains a loop/while but does not take a \
                 &Budget/BudgetMeter/&SolveCtx; thread a budget through \
                 (call sites without one use \
                 dcn_cache::prelude::unlimited_ctx()) — bounded loops may \
                 carry a justified allow",
                def.name
            ),
        );
    }
}

// ---------------------------------------------------------------------------
// Rule: metric-registry

const METRIC_MACROS: &[&str] = &["counter", "gauge", "histogram", "span"];

fn metric_registry(files: &[SourceFile], diags: &mut Vec<Diagnostic>) {
    let names_rel = "crates/obs/src/names.rs";
    let Some(names_file) = files.iter().find(|f| f.rel == names_rel) else {
        // No registry in this tree (e.g. a fixture without one): nothing to
        // check against, and raw names have nowhere to live — skip quietly.
        return;
    };
    // Parse `pub const IDENT: &str = "value";` entries.
    let mut registry: Vec<(String, String, usize)> = Vec::new(); // (ident, value, line)
    for at in word_occurrences(&names_file.masked, "const") {
        let ident: String = names_file.masked[at + 5..]
            .trim_start()
            .chars()
            .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
            .collect();
        if ident.is_empty() || ident == "ALL" {
            continue;
        }
        // The value is the first string literal after the ident.
        let Some(lit) = names_file.strings.iter().find(|s| s.start > at) else {
            continue;
        };
        // Only accept it if it is on the same statement (before the next
        // `;`), so ALL-table entries are not misattributed.
        if let Some(semi) = names_file.masked[at..].find(';') {
            if lit.start > at + semi {
                continue;
            }
        }
        registry.push((ident, lit.value.clone(), names_file.line_of(at)));
    }
    // Convention + uniqueness of registered names.
    let mut seen = std::collections::BTreeMap::new();
    for (ident, value, line) in &registry {
        let well_formed = value.split('.').count() >= 2
            && !value.starts_with('.')
            && !value.ends_with('.')
            && !value.contains("..")
            && value
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '.' || c == '_');
        if !well_formed {
            push(
                diags,
                "metric-registry",
                names_file,
                names_file.line_starts[line - 1],
                format!("`{ident}` = \"{value}\" violates the <crate>.<module>.<event> convention"),
            );
        }
        if let Some(first) = seen.insert(value.clone(), ident.clone()) {
            push(
                diags,
                "metric-registry",
                names_file,
                names_file.line_starts[line - 1],
                format!("`{ident}` duplicates the name \"{value}\" already registered as `{first}`"),
            );
        }
    }
    // Call sites: no raw strings, and path args must resolve to a constant.
    // Shared by the metric macros and the `trace_instant` fn-call form.
    fn check_arg(
        diags: &mut Vec<Diagnostic>,
        used: &mut std::collections::BTreeSet<String>,
        idents: &std::collections::BTreeSet<&str>,
        f: &SourceFile,
        at: usize,
        arg_off: usize,
        what: &str,
    ) {
        let arg = f.masked[arg_off..].trim_start();
        if arg.starts_with('"') {
            push(
                diags,
                "metric-registry",
                f,
                at,
                format!(
                    "raw string passed to {what}; metric names must come from \
                     dcn_obs::names so manifests and EXPERIMENTS.md stay in sync"
                ),
            );
            return;
        }
        // Last path segment of the argument.
        let path: String = arg
            .chars()
            .take_while(|c| c.is_ascii_alphanumeric() || *c == '_' || *c == ':')
            .collect();
        let last = path.rsplit("::").next().unwrap_or("").to_string();
        if last.is_empty() {
            return; // expression arg (e.g. a local); out of scope
        }
        if idents.contains(last.as_str()) {
            used.insert(last);
        } else {
            push(
                diags,
                "metric-registry",
                f,
                at,
                format!("`{last}` is not a constant in crates/obs/src/names.rs"),
            );
        }
    }
    let idents: std::collections::BTreeSet<&str> =
        registry.iter().map(|(i, _, _)| i.as_str()).collect();
    let mut used: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();
    for f in files.iter().filter(|f| f.krate.is_some() && !f.is_test_code) {
        for &mac in METRIC_MACROS {
            let mut from = 0;
            while let Some(p) = f.masked[from..].find(mac) {
                let at = from + p;
                from = at + mac.len();
                let pre_ok = at == 0
                    || !f.masked.as_bytes()[at - 1].is_ascii_alphanumeric()
                        && f.masked.as_bytes()[at - 1] != b'_';
                let after = &f.masked[at + mac.len()..];
                if !pre_ok || !after.starts_with("!(") || f.in_test_region(at) {
                    continue;
                }
                let arg_off = at + mac.len() + 2;
                check_arg(diags, &mut used, &idents, f, at, arg_off, &format!("{mac}!"));
            }
        }
        // `dcn_obs::trace_instant("…")` is a plain fn call rather than a
        // macro, but its argument names a trace event all the same — hold
        // it to the registry. The `fn trace_instant(…)` definition in obs
        // itself is not a call site.
        const INSTANT: &str = "trace_instant";
        for at in word_occurrences(&f.masked, INSTANT) {
            if f.in_test_region(at) || f.masked[..at].trim_end().ends_with("fn") {
                continue;
            }
            if !f.masked[at + INSTANT.len()..].starts_with('(') {
                continue;
            }
            let arg_off = at + INSTANT.len() + 1;
            check_arg(diags, &mut used, &idents, f, at, arg_off, "trace_instant()");
        }
    }
    // Reverse direction: every constant must be referenced outside
    // names.rs (in any non-test file, including the macro sites above and
    // plain fn-call uses such as counter_value(names::X)).
    for f in files
        .iter()
        .filter(|f| f.rel != names_rel && f.krate.is_some() && !f.is_test_code)
    {
        for (ident, _, _) in &registry {
            if used.contains(ident) {
                continue;
            }
            if !word_occurrences(&f.masked, ident).is_empty() {
                used.insert(ident.clone());
            }
        }
    }
    for (ident, value, line) in &registry {
        if !used.contains(ident) {
            push(
                diags,
                "metric-registry",
                names_file,
                names_file.line_starts[line - 1],
                format!(
                    "dead metric: `{ident}` (\"{value}\") is registered but never used \
                     at any call site"
                ),
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Rule: nondeterminism

fn nondeterminism(files: &[SourceFile], diags: &mut Vec<Diagnostic>) {
    const CLOCKS: &[&str] = &["Instant::now", "SystemTime::now"];
    const RNGS: &[&str] = &["thread_rng", "from_entropy"];
    for f in files.iter().filter(|f| {
        f.krate
            .as_deref()
            .is_some_and(|k| !CLOCK_CRATES.contains(&k))
            && !f.is_test_code
    }) {
        for &pat in CLOCKS {
            let mut from = 0;
            while let Some(p) = f.masked[from..].find(pat) {
                let at = from + p;
                from = at + pat.len();
                if f.in_test_region(at) {
                    continue;
                }
                push(
                    diags,
                    "nondeterminism",
                    f,
                    at,
                    format!(
                        "`{pat}` outside dcn-guard/dcn-obs/dcn-exec; wall-clock reads \
                         belong in the guard (budgets), obs (spans), or exec (pool \
                         deadline re-checks) so manifests stay reproducible"
                    ),
                );
            }
        }
        for &pat in RNGS {
            for at in word_occurrences(&f.masked, pat) {
                if f.in_test_region(at) {
                    continue;
                }
                push(
                    diags,
                    "nondeterminism",
                    f,
                    at,
                    format!(
                        "`{pat}` constructs an unseeded RNG; use SeedableRng::seed_from_u64 \
                         with a recorded seed (manifests must reproduce runs)"
                    ),
                );
            }
        }
    }
    // Thread spawning is scanned over *all* non-exec crates (including the
    // clock crates): every fan-out must go through dcn-exec's deterministic
    // pool, never ad-hoc `std::thread` use.
    const THREADS: &[&str] = &["thread::spawn", "thread::scope", "thread::Builder"];
    for f in files.iter().filter(|f| {
        f.krate
            .as_deref()
            .is_some_and(|k| !THREAD_CRATES.contains(&k))
            && !f.is_test_code
    }) {
        for &pat in THREADS {
            let mut from = 0;
            while let Some(p) = f.masked[from..].find(pat) {
                let at = from + p;
                from = at + pat.len();
                if f.in_test_region(at) {
                    continue;
                }
                push(
                    diags,
                    "nondeterminism",
                    f,
                    at,
                    format!(
                        "`{pat}` outside dcn-exec; spawn parallelism through the \
                         dcn_exec::Pool so merges stay input-ordered and results are \
                         thread-count-independent"
                    ),
                );
            }
        }
    }
    // Process spawning is likewise scanned over all non-fleet crates:
    // multi-process fan-out must go through dcn-fleet's supervised queue
    // so crashes are detected, retries are bounded, and merges stay in
    // input order.
    const PROCS: &[&str] = &["Command::new"];
    for f in files.iter().filter(|f| {
        f.krate
            .as_deref()
            .is_some_and(|k| !PROC_CRATES.contains(&k))
            && !f.is_test_code
    }) {
        for &pat in PROCS {
            let mut from = 0;
            while let Some(p) = f.masked[from..].find(pat) {
                let at = from + p;
                from = at + pat.len();
                if f.in_test_region(at) {
                    continue;
                }
                push(
                    diags,
                    "nondeterminism",
                    f,
                    at,
                    format!(
                        "`{pat}` outside dcn-fleet; fan out across processes through \
                         dcn_fleet::run_fleet so workers are leased, crashes retried, \
                         and results merged in input order"
                    ),
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Rule: unsafe-forbid

fn unsafe_forbid(files: &[SourceFile], diags: &mut Vec<Diagnostic>) {
    for f in files {
        let is_crate_root = f.rel == "src/lib.rs"
            || (f.rel.starts_with("crates/")
                && f.rel.ends_with("/src/lib.rs")
                && f.rel.matches('/').count() == 3);
        if !is_crate_root {
            continue;
        }
        if !f.masked.contains("#![forbid(unsafe_code)]") {
            diags.push(Diagnostic {
                rule: "unsafe-forbid",
                severity: Severity::Error,
                file: f.rel.clone(),
                line: 1,
                message: "crate root lacks `#![forbid(unsafe_code)]` (the workspace is \
                          unsafe-free; lock it in)"
                    .into(),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// Rule: doc-coverage

/// True when `f.rel` is a crate root (`src/lib.rs` of the umbrella crate
/// or of any workspace member).
fn is_crate_root(rel: &str) -> bool {
    rel == "src/lib.rs"
        || (rel.starts_with("crates/")
            && rel.ends_with("/src/lib.rs")
            && rel.matches('/').count() == 3)
}

/// True when the item whose `pub` keyword sits at raw offset `at` carries
/// a doc comment. Doc comments are masked out by the scanner, so this
/// walks the *raw* lines above the item, skipping over attributes
/// (`#[…]`, including a bare `)]` continuation tail) and plain `//`
/// comments such as `dcn-lint: allow(…)` annotations, which
/// conventionally sit between the doc and the item.
fn documented(f: &SourceFile, at: usize) -> bool {
    let mut line = f.line_of(at);
    // An item not at the start of its line (e.g. emitted by a macro
    // invocation) is out of scope for a token-level scanner: accept it.
    let col = at - f.line_starts[line - 1];
    if !f.raw_line(line)[..col].trim().is_empty() {
        return true;
    }
    let mut in_attr = false;
    while line > 1 {
        line -= 1;
        let t = f.raw_line(line).trim();
        if in_attr {
            // Consuming the interior of a multi-line `#[…(\n … \n)]`
            // attribute bottom-up; its opening line ends the stretch.
            if t.starts_with("#[") {
                in_attr = false;
            }
            continue;
        }
        if t.starts_with("///") || t.starts_with("#[doc") || t.starts_with("#![doc") {
            return true;
        }
        // Attributes and ordinary line comments may sit between the doc
        // comment and the item.
        if t.starts_with("#[") || t.starts_with("//") {
            continue;
        }
        if t == ")]" || t == "]" {
            in_attr = true;
            continue;
        }
        return false;
    }
    false
}

fn doc_coverage(files: &[SourceFile], diags: &mut Vec<Diagnostic>) {
    for f in files
        .iter()
        .filter(|f| f.krate.is_some() && !f.is_test_code && !f.is_bin)
    {
        if is_crate_root(&f.rel) && !f.raw.lines().any(|l| l.trim_start().starts_with("//!")) {
            diags.push(Diagnostic {
                rule: "doc-coverage",
                severity: Severity::Error,
                file: f.rel.clone(),
                line: 1,
                message: "crate root lacks `//!` module docs; state the crate's role, its \
                          paper anchor, and its determinism/budget contract"
                    .into(),
            });
        }
        for at in word_occurrences(&f.masked, "pub") {
            if f.in_test_region(at) {
                continue;
            }
            let rest = f.masked[at + 3..].trim_start();
            let Some(item) = ["fn", "struct", "enum"]
                .iter()
                .find(|k| rest.starts_with(&format!("{k} ")))
            else {
                continue;
            };
            let name: String = rest[item.len()..]
                .trim_start()
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                .collect();
            if !documented(f, at) {
                push(
                    diags,
                    "doc-coverage",
                    f,
                    at,
                    format!(
                        "`pub {item} {name}` has no `///` doc comment; every public item \
                         in library code documents its contract (rustdoc is the API \
                         reference — see DESIGN.md §11)"
                    ),
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Guard regions (shared by lock-order and blocking-under-lock)

/// One classified guard acquisition: byte offset of the call, the end of
/// the region over which the guard is assumed live, and the symbol's
/// rank in [`LOCK_ORDER`].
struct Acquisition {
    off: usize,
    region_end: usize,
    rank: usize,
}

/// End of the statement containing masked offset `from`: one past the
/// next `;` at balanced bracket depth, or the closing bracket of the
/// enclosing block/call if that comes first (tail expressions).
fn statement_end(masked: &str, from: usize) -> usize {
    let b = masked.as_bytes();
    let mut depth = 0u32;
    for (i, &c) in b.iter().enumerate().skip(from) {
        match c {
            b'(' | b'[' | b'{' => depth += 1,
            b')' | b']' | b'}' => {
                if depth == 0 {
                    return i;
                }
                depth -= 1;
            }
            b';' if depth == 0 => return i + 1,
            _ => {}
        }
    }
    b.len()
}

/// One past the closing `}` of the innermost block enclosing masked
/// offset `at` (the whole file when `at` is at the top level).
fn enclosing_block_end(masked: &str, at: usize) -> usize {
    let b = masked.as_bytes();
    let mut stack: Vec<usize> = Vec::new();
    for (i, &c) in b.iter().enumerate().take(at) {
        match c {
            b'{' => stack.push(i),
            b'}' => {
                stack.pop();
            }
            _ => {}
        }
    }
    match stack.last() {
        Some(&open) => match_brace(masked, open).unwrap_or(masked.len()),
        None => masked.len(),
    }
}

/// Collects the guard acquisitions of one file, sorted by offset.
///
/// A `.lock(`/`.read(`/`.write(` call counts as an acquisition only when
/// the statement chunk leading up to it (back to the previous `;`, `{`,
/// or `}`) names a [`LOCK_ORDER`] symbol that pass 1 actually found
/// declared with a `Mutex`/`RwLock` type somewhere in the tree — this is
/// what keeps `io::Read::read` and `Disk::store`-style methods from
/// being classified as locking. `let`-bound guards are assumed live to
/// the end of the innermost enclosing block; temporaries to the end of
/// the statement. Guards returned from helper fns escape this analysis
/// (documented trade-off, DESIGN.md §14).
fn guard_acquisitions(f: &SourceFile, index: &WorkspaceIndex) -> Vec<Acquisition> {
    let mut out = Vec::new();
    for call in [".lock(", ".read(", ".write("] {
        let mut from = 0;
        while let Some(p) = f.masked[from..].find(call) {
            let at = from + p;
            from = at + call.len();
            if f.in_test_region(at) {
                continue;
            }
            let stmt_start = f.masked[..at].rfind([';', '{', '}']).map_or(0, |i| i + 1);
            let chunk = &f.masked[stmt_start..at];
            let hit = LOCK_ORDER
                .iter()
                .enumerate()
                .filter(|&(_, sym)| index.lock_idents.contains(*sym))
                .filter_map(|(rank, sym)| word_occurrences(chunk, sym).last().map(|&p| (p, rank)))
                .max_by_key(|&(p, _)| p);
            let Some((_, rank)) = hit else {
                continue;
            };
            let region_end = if word_occurrences(chunk, "let").is_empty() {
                statement_end(&f.masked, at)
            } else {
                enclosing_block_end(&f.masked, at)
            };
            out.push(Acquisition {
                off: at,
                region_end,
                rank,
            });
        }
    }
    out.sort_unstable_by_key(|a| a.off);
    out
}

/// True when the guard-region rules apply to this file.
fn lock_scope(f: &SourceFile) -> bool {
    f.krate
        .as_deref()
        .is_some_and(|k| LOCK_CRATES.contains(&k))
        && !f.is_test_code
}

// ---------------------------------------------------------------------------
// Rule: lock-order

fn lock_order(f: &SourceFile, index: &WorkspaceIndex, diags: &mut Vec<Diagnostic>) {
    if !lock_scope(f) {
        return;
    }
    let in_cache = f.krate.as_deref() == Some("cache");
    let acqs = guard_acquisitions(f, index);
    for (i, outer) in acqs.iter().enumerate() {
        for inner in &acqs[i + 1..] {
            if inner.off >= outer.region_end {
                continue;
            }
            // Re-acquiring a different shard by index is the one legal
            // self-nesting, and only inside the crate that owns the
            // shard array and can prove index disjointness.
            let shard_self = inner.rank == outer.rank
                && LOCK_ORDER[inner.rank] == "shards"
                && in_cache;
            if inner.rank > outer.rank || shard_self {
                continue;
            }
            push(
                diags,
                "lock-order",
                f,
                inner.off,
                format!(
                    "`{}` (rank {}) acquired while a `{}` (rank {}) guard is live; the \
                     declared acquisition order is {} — release the outer guard (or \
                     copy what you need out of it) before taking this one",
                    LOCK_ORDER[inner.rank],
                    inner.rank,
                    LOCK_ORDER[outer.rank],
                    outer.rank,
                    LOCK_ORDER.join(" → "),
                ),
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Rule: blocking-under-lock

/// Substring patterns treated as blocking calls when they appear inside
/// a guard region. `sleep` is handled separately (word-bounded).
const BLOCKING_CALLS: &[&str] = &["fs::", "File::", "OpenOptions", "Command::new", ".recv("];

fn blocking_under_lock(f: &SourceFile, index: &WorkspaceIndex, diags: &mut Vec<Diagnostic>) {
    if !lock_scope(f) {
        return;
    }
    for acq in &guard_acquisitions(f, index) {
        let region = &f.masked[acq.off..acq.region_end];
        let sym = LOCK_ORDER[acq.rank];
        for pat in BLOCKING_CALLS {
            let mut from = 0;
            while let Some(p) = region[from..].find(pat) {
                let at = acq.off + from + p;
                from += p + pat.len();
                if f.in_test_region(at) {
                    continue;
                }
                push(
                    diags,
                    "blocking-under-lock",
                    f,
                    at,
                    format!(
                        "`{pat}…` while a `{sym}` guard is live; every other thread \
                         touching `{sym}` stalls behind this call — serialize what you \
                         need into a local under the guard, release it, then block"
                    ),
                );
            }
        }
        for &p in &word_occurrences(region, "sleep") {
            if !region[p + "sleep".len()..].starts_with('(') {
                continue;
            }
            let at = acq.off + p;
            if f.in_test_region(at) {
                continue;
            }
            push(
                diags,
                "blocking-under-lock",
                f,
                at,
                format!(
                    "`sleep(…)` while a `{sym}` guard is live; sleeping under a lock \
                     turns a backoff into a convoy — release the guard first"
                ),
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Rule: atomic-ordering

/// One past the `)` matching the `(` at `open`.
fn match_paren(masked: &str, open: usize) -> Option<usize> {
    let b = masked.as_bytes();
    let mut depth = 0usize;
    for (i, &c) in b.iter().enumerate().skip(open) {
        match c {
            b'(' => depth += 1,
            b')' => {
                depth -= 1;
                if depth == 0 {
                    return Some(i + 1);
                }
            }
            _ => {}
        }
    }
    None
}

fn atomic_ordering(f: &SourceFile, index: &WorkspaceIndex, diags: &mut Vec<Diagnostic>) {
    if f.krate.is_none() || f.is_test_code {
        return;
    }
    // (a) Read-modify-write methods are unambiguously atomic whatever the
    // receiver: `.fetch_*` and `.compare_exchange{,_weak}` must name
    // literal `Ordering::` arguments (two for compare-exchange).
    for (prefix, needed) in [(".fetch_", 1usize), (".compare_exchange", 2)] {
        let mut from = 0;
        while let Some(p) = f.masked[from..].find(prefix) {
            let at = from + p;
            from = at + prefix.len();
            let b = f.masked.as_bytes();
            let mut open = at + prefix.len();
            while open < b.len() && (b[open].is_ascii_alphanumeric() || b[open] == b'_') {
                open += 1;
            }
            if b.get(open) != Some(&b'(') || f.in_test_region(at) {
                continue;
            }
            let method = &f.masked[at + 1..open];
            let Some(close) = match_paren(&f.masked, open) else {
                continue;
            };
            let found = f.masked[open..close].matches("Ordering::").count();
            if found < needed {
                push(
                    diags,
                    "atomic-ordering",
                    f,
                    at,
                    format!(
                        "`.{method}(…)` names {found} explicit `Ordering::…` argument(s), \
                         need {needed}; spell the ordering out at the call site — it is \
                         part of the concurrency contract, not a default"
                    ),
                );
            }
        }
    }
    // (b) `.load`/`.store`/`.swap` are ambiguous method names; they are
    // held to the same requirement only when the receiver identifier is
    // one pass 1 saw declared with an atomic type (so `disk.store(key,
    // value)` and `io::Write` stay out of scope).
    for prefix in [".load(", ".store(", ".swap("] {
        let mut from = 0;
        while let Some(p) = f.masked[from..].find(prefix) {
            let at = from + p;
            from = at + prefix.len();
            if f.in_test_region(at) {
                continue;
            }
            let recv = index::ident_before(&f.masked, at);
            if recv.is_empty() || !index.atomic_idents.contains(recv) {
                continue;
            }
            let open = at + prefix.len() - 1;
            let Some(close) = match_paren(&f.masked, open) else {
                continue;
            };
            if !f.masked[open..close].contains("Ordering::") {
                let method = prefix.trim_matches(['.', '(']);
                push(
                    diags,
                    "atomic-ordering",
                    f,
                    at,
                    format!(
                        "`{recv}.{method}(…)` on an atomic names no explicit \
                         `Ordering::…`; spell the ordering out at the call site"
                    ),
                );
            }
        }
    }
    // (c) SeqCst containment: outside the fan-out engines it needs a
    // justified allow.
    if !f
        .krate
        .as_deref()
        .is_some_and(|k| SEQCST_CRATES.contains(&k))
    {
        for at in word_occurrences(&f.masked, "SeqCst") {
            if f.in_test_region(at) {
                continue;
            }
            push(
                diags,
                "atomic-ordering",
                f,
                at,
                "`Ordering::SeqCst` outside exec/fleet; the workspace's atomics are \
                 counters and latched flags, for which Relaxed (or Acquire/Release \
                 for handoff) suffices — justify with an allow if this site truly \
                 needs a total order"
                    .to_string(),
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Rule: env-registry

/// True when `name` follows the `DCN_` upper-snake convention.
fn env_name_ok(name: &str) -> bool {
    name.strip_prefix("DCN_").is_some_and(|rest| {
        !rest.is_empty()
            && rest
                .chars()
                .all(|c| c.is_ascii_uppercase() || c.is_ascii_digit() || c == '_')
    })
}

/// Marker lines bracketing the generated env-var table in README.md.
pub const ENV_TABLE_BEGIN: &str = "<!-- dcn-env:begin -->";
/// See [`ENV_TABLE_BEGIN`].
pub const ENV_TABLE_END: &str = "<!-- dcn-env:end -->";

fn env_registry(
    files: &[SourceFile],
    index: &WorkspaceIndex,
    readme: Option<&str>,
    diags: &mut Vec<Diagnostic>,
) {
    let env_rel = index::ENV_REGISTRY_REL;
    // No registry in this tree (e.g. a fixture without one): raw reads
    // have no constants to use, so skip quietly — same gating as the
    // metric registry.
    if !files.iter().any(|f| f.rel == env_rel) {
        return;
    }
    let entries = &index.env_entries;
    let entry_diag = |line: usize, message: String| Diagnostic {
        rule: "env-registry",
        severity: Severity::Error,
        file: env_rel.to_string(),
        line,
        message,
    };
    // Registered names: convention + uniqueness.
    let mut seen: std::collections::BTreeMap<&str, &str> = std::collections::BTreeMap::new();
    for e in entries {
        if !env_name_ok(&e.name) {
            diags.push(entry_diag(
                e.line,
                format!(
                    "`{}` registers \"{}\", which violates the DCN_ upper-snake naming \
                     convention every knob shares",
                    e.ident, e.name
                ),
            ));
        }
        if let Some(first) = seen.insert(e.name.as_str(), e.ident.as_str()) {
            diags.push(entry_diag(
                e.line,
                format!(
                    "`{}` duplicates the variable \"{}\" already registered as `{first}`",
                    e.ident, e.name
                ),
            ));
        }
    }
    // Use sites: no raw env reads, no unregistered DCN_* names, and every
    // entry referenced somewhere outside the registry.
    let names: std::collections::BTreeSet<&str> =
        entries.iter().map(|e| e.name.as_str()).collect();
    let mut used: std::collections::BTreeSet<&str> = std::collections::BTreeSet::new();
    const RAW_READ: &str = "env::var";
    for f in files
        .iter()
        .filter(|f| f.krate.is_some() && !f.is_test_code && f.rel != env_rel)
    {
        let mut from = 0;
        while let Some(p) = f.masked[from..].find(RAW_READ) {
            let at = from + p;
            from = at + RAW_READ.len();
            let after = &f.masked[at + RAW_READ.len()..];
            if !(after.starts_with('(') || after.starts_with("_os(")) || f.in_test_region(at) {
                continue;
            }
            push(
                diags,
                "env-registry",
                f,
                at,
                "raw `std::env::var` read; route it through a `dcn_guard::env` constant \
                 (e.g. `env::CACHE_DIR.get()`) so the knob is named once, documented in \
                 the README table, and checked for liveness"
                    .to_string(),
            );
        }
        for s in &f.strings {
            if f.in_test_region(s.start)
                || !env_name_ok(&s.value)
                || names.contains(s.value.as_str())
            {
                continue;
            }
            push(
                diags,
                "env-registry",
                f,
                s.start,
                format!(
                    "\"{}\" looks like a DCN environment variable but is not registered \
                     in dcn_guard::env; register it (name + default + doc line) or move \
                     it out of the DCN_ namespace",
                    s.value
                ),
            );
        }
        for e in entries {
            if !used.contains(e.ident.as_str())
                && !word_occurrences(&f.masked, &e.ident).is_empty()
            {
                used.insert(&e.ident);
            }
        }
    }
    for e in entries {
        if !used.contains(e.ident.as_str()) {
            diags.push(entry_diag(
                e.line,
                format!(
                    "dead env var: `{}` (\"{}\") is registered but never read outside \
                     the registry — delete it or wire it up",
                    e.ident, e.name
                ),
            ));
        }
    }
    // README drift: the generated table between the markers must match
    // the registry exactly.
    if let Some(readme) = readme {
        let readme_diag = |line: usize, message: String| Diagnostic {
            rule: "env-registry",
            severity: Severity::Error,
            file: "README.md".to_string(),
            line,
            message,
        };
        let begin = readme.find(ENV_TABLE_BEGIN);
        let end = readme.find(ENV_TABLE_END);
        let (begin, end) = match (begin, end) {
            (Some(b), Some(e)) if b < e => (b, e),
            _ => {
                diags.push(readme_diag(
                    1,
                    format!(
                        "README.md lacks the `{ENV_TABLE_BEGIN}` / `{ENV_TABLE_END}` \
                         markers; add them and paste the output of \
                         `cargo run -p dcn-lint -- --env-table` between them"
                    ),
                ));
                return;
            }
        };
        let actual: Vec<&str> = readme[begin + ENV_TABLE_BEGIN.len()..end]
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty())
            .collect();
        let expected_text = index::env_table(entries);
        let expected: Vec<&str> = expected_text
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty())
            .collect();
        if actual != expected {
            diags.push(readme_diag(
                readme[..begin].matches('\n').count() + 1,
                "the README environment-variable table no longer matches \
                 dcn_guard::env; regenerate the block with \
                 `cargo run -p dcn-lint -- --env-table`"
                    .to_string(),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(rel: &str, src: &str) -> SourceFile {
        SourceFile::new(rel.into(), src.into())
    }

    #[test]
    fn float_literal_classifier() {
        assert!(is_float_literal("0.0"));
        assert!(is_float_literal("1.5e3"));
        assert!(is_float_literal("2f64"));
        assert!(is_float_literal("1e-9"));
        assert!(!is_float_literal("x"));
        assert!(!is_float_literal("0"));
        assert!(!is_float_literal("a.0"));
    }

    #[test]
    fn panic_freedom_flags_and_exempts() {
        let f = file(
            "crates/lp/src/x.rs",
            "fn a() { x.unwrap(); }\n#[cfg(test)]\nmod t { fn b() { y.unwrap(); } }\n",
        );
        let mut d = Vec::new();
        panic_freedom(&[f], &mut d);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].line, 1);
    }

    #[test]
    fn panic_freedom_extends_to_obs_and_trace() {
        // Observability code runs inside every solver call path; it is
        // held panic-free even though obs/trace are not solver crates.
        let obs = file(
            "crates/obs/src/x.rs",
            "fn a() { m.lock().expect(\"poisoned\"); }\n",
        );
        let trace = file("crates/trace/src/x.rs", "fn a() { x.unwrap(); }\n");
        let bench = file("crates/bench/src/x.rs", "fn a() { x.unwrap(); }\n");
        let mut d = Vec::new();
        panic_freedom(&[obs, trace, bench], &mut d);
        let files: Vec<&str> = d.iter().map(|x| x.file.as_str()).collect();
        assert_eq!(
            files,
            ["crates/obs/src/x.rs", "crates/trace/src/x.rs"],
            "{d:?}"
        );
    }

    #[test]
    fn metric_registry_checks_trace_instant_call_sites() {
        let names = file(
            "crates/obs/src/names.rs",
            "pub const CACHE_HIT: &str = \"cache.hit\";\n",
        );
        // The definition site in obs is not a call; constant-arg calls
        // count as uses; raw-string calls are violations.
        let def = file(
            "crates/obs/src/lib.rs",
            "pub fn trace_instant(name: &str) { let _ = name; }\n",
        );
        let good = file(
            "crates/cache/src/a.rs",
            "fn h() { dcn_obs::trace_instant(dcn_obs::names::CACHE_HIT); }\n",
        );
        let bad = file(
            "crates/cache/src/b.rs",
            "fn h() { dcn_obs::trace_instant(\"cache.hit2\"); }\n",
        );
        let mut d = Vec::new();
        metric_registry(&[names, def, good, bad], &mut d);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].file, "crates/cache/src/b.rs");
        assert!(d[0].message.contains("raw string"));
    }

    #[test]
    fn unwrap_or_is_not_unwrap() {
        let f = file("crates/lp/src/x.rs", "fn a() { x.unwrap_or(0); y.expect_err(\"e\"); }\n");
        let mut d = Vec::new();
        panic_freedom(&[f], &mut d);
        assert!(d.is_empty());
    }

    #[test]
    fn float_eq_flags_literal_comparisons() {
        let f = file(
            "crates/core/src/x.rs",
            "fn a(v: f64) -> bool { v == 0.0 }\nfn b(v: f64) -> bool { v <= 1.0 }\n",
        );
        let mut d = Vec::new();
        float_eq(&[f], &mut d);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].line, 1);
    }

    #[test]
    fn budget_coverage_requires_budget_param_not_sibling() {
        // A `_budgeted` sibling used to satisfy this rule (PR 2's dual-API
        // convention); after the PR 4 collapse only a Budget in the
        // signature counts.
        let src = "pub fn solve(b: &Budget) { loop { } }\n\
                   pub fn free() { while x { } }\n\
                   pub fn covered() { loop { } }\n\
                   fn covered_budgeted(b: &Budget) { }\n";
        let f = file("crates/mcf/src/x.rs", src);
        let mut d = Vec::new();
        budget_coverage(&[f], &mut d);
        assert_eq!(d.len(), 2, "{d:?}");
        assert!(d[0].message.contains("free"));
        assert!(d[1].message.contains("covered"));
    }

    #[test]
    fn unsafe_forbid_checks_roots_only() {
        let bad = file("crates/lp/src/lib.rs", "pub fn x() {}\n");
        let good = file("crates/mcf/src/lib.rs", "#![forbid(unsafe_code)]\npub fn x() {}\n");
        let other = file("crates/lp/src/simplex.rs", "pub fn x() {}\n");
        let mut d = Vec::new();
        unsafe_forbid(&[bad, good, other], &mut d);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].file, "crates/lp/src/lib.rs");
    }

    #[test]
    fn allow_requires_justification() {
        let src = "fn a() { x.unwrap() } // dcn-lint: allow(panic-freedom)\n\
                   fn b() { y.unwrap() } // dcn-lint: allow(panic-freedom) — infallible by Vec len check\n";
        let f = file("crates/lp/src/x.rs", src);
        let out = run_all(&[f]);
        let rules: Vec<&str> = out.diagnostics.iter().map(|d| d.rule).collect();
        assert!(rules.contains(&"allow-justification"), "{rules:?}");
        assert!(rules.contains(&"panic-freedom"));
        assert_eq!(out.allows_honored, 1);
    }

    #[test]
    fn unused_allow_is_reported() {
        let src = "// dcn-lint: allow(panic-freedom) — no longer needed here\nfn a() {}\n";
        let f = file("crates/lp/src/x.rs", src);
        let out = run_all(&[f]);
        assert_eq!(out.diagnostics.len(), 1);
        assert_eq!(out.diagnostics[0].rule, "unused-allow");
    }

    #[test]
    fn doc_coverage_flags_undocumented_pub_items() {
        let src = "//! Module docs.\n\
                   /// Documented.\n\
                   pub fn ok() {}\n\
                   pub fn bare() {}\n\
                   pub struct Naked;\n\
                   pub(crate) fn internal() {}\n\
                   fn private() {}\n";
        let f = file("crates/core/src/x.rs", src);
        let mut d = Vec::new();
        doc_coverage(&[f], &mut d);
        let lines: Vec<usize> = d.iter().map(|x| x.line).collect();
        assert_eq!(lines, [4, 5], "{d:?}");
    }

    #[test]
    fn doc_coverage_walks_back_over_attributes_and_comments() {
        // Doc comments legitimately sit above attributes and above inline
        // `// dcn-lint: allow(...)` annotations; neither hides the doc.
        let src = "//! Docs.\n\
                   /// Documented through an attribute stack.\n\
                   #[derive(\n\
                       Debug,\n\
                   )]\n\
                   #[inline]\n\
                   // dcn-lint: allow(budget-coverage) — bounded by the radix\n\
                   pub fn layered() {}\n";
        let f = file("crates/mcf/src/x.rs", src);
        let mut d = Vec::new();
        doc_coverage(&[f], &mut d);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn doc_coverage_requires_crate_root_module_docs() {
        let bare = file("crates/lp/src/lib.rs", "#![forbid(unsafe_code)]\n");
        let documented = file(
            "crates/mcf/src/lib.rs",
            "#![forbid(unsafe_code)]\n//! The MCF crate.\n",
        );
        let submodule = file("crates/lp/src/simplex.rs", "fn x() {}\n");
        let mut d = Vec::new();
        doc_coverage(&[bare, documented, submodule], &mut d);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].file, "crates/lp/src/lib.rs");
        assert_eq!(d[0].line, 1);
    }

    #[test]
    fn doc_coverage_skips_tests_benches_and_bins() {
        let t = file("crates/core/tests/x.rs", "pub fn bare() {}\n");
        let b = file("crates/bench/src/bin/fig.rs", "pub fn bare() {}\n");
        let mut d = Vec::new();
        doc_coverage(&[t, b], &mut d);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn nondeterminism_scopes_to_non_clock_crates() {
        let guard = file("crates/guard/src/x.rs", "fn a() { Instant::now(); }\n");
        let exec = file("crates/exec/src/x.rs", "fn a() { Instant::now(); }\n");
        let topo = file("crates/topo/src/x.rs", "fn a() { Instant::now(); }\n");
        let mut d = Vec::new();
        nondeterminism(&[guard, exec, topo], &mut d);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].file, "crates/topo/src/x.rs");
    }

    #[test]
    fn nondeterminism_flags_threads_outside_exec() {
        let exec = file(
            "crates/exec/src/x.rs",
            "fn a() { std::thread::scope(|s| { s.spawn(|| {}); }); }\n",
        );
        // The clock carve-out does not extend to threads: obs may read
        // clocks but must not spawn.
        let obs = file("crates/obs/src/x.rs", "fn a() { std::thread::spawn(|| {}); }\n");
        let core = file("crates/core/src/x.rs", "fn a() { std::thread::scope(|s| {}); }\n");
        let mut d = Vec::new();
        nondeterminism(&[exec, obs, core], &mut d);
        let files: Vec<&str> = d.iter().map(|x| x.file.as_str()).collect();
        assert_eq!(
            files,
            ["crates/obs/src/x.rs", "crates/core/src/x.rs"],
            "{d:?}"
        );
    }

    #[test]
    fn nondeterminism_flags_process_spawns_outside_fleet() {
        let fleet = file(
            "crates/fleet/src/x.rs",
            "fn a() { std::process::Command::new(\"x\").spawn(); }\n",
        );
        // Fleet may spawn processes *and* read the clocks its leases need.
        let fleet_clock = file("crates/fleet/src/y.rs", "fn a() { Instant::now(); }\n");
        let core = file(
            "crates/core/src/x.rs",
            "fn a() { std::process::Command::new(\"x\").spawn(); }\n",
        );
        let mut d = Vec::new();
        nondeterminism(&[fleet, fleet_clock, core], &mut d);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].file, "crates/core/src/x.rs");
        assert!(d[0].message.contains("dcn_fleet::run_fleet"), "{d:?}");
    }
}
