#![forbid(unsafe_code)]
//! Maximum-weight perfect matching on implicit complete bipartite graphs.
//!
//! The paper's throughput upper bound (Equation 1) is minimized by the
//! *maximal permutation traffic matrix*: the permutation of switch pairs
//! maximizing total shortest-path length, i.e. a maximum-weight perfect
//! matching in a complete bipartite graph whose edge weights are pairwise
//! distances. The paper uses igraph's Hungarian implementation; this crate
//! provides:
//!
//! * [`hungarian_max`] — exact `O(n^3)` Hungarian algorithm (the
//!   Jonker–Volgenant potentials formulation). Weights are supplied by a
//!   closure, so the `n x n` matrix is never materialized by the caller.
//! * [`greedy_max`] — the paper's own Algorithm 1 (Appendix D): repeatedly
//!   pair an arbitrary unmatched node with the farthest unmatched node.
//!   Linear passes; any permutation yields a *valid* (if looser) upper
//!   bound in Equation 1, so this is the scalable fallback.
//! * [`improve_2swap`] — local-search improvement for the greedy result.

#![warn(missing_docs)]

use dcn_guard::{Budget, BudgetError};

/// A permutation assignment: `assignment[u] = v` means `u` sends to `v`.
/// Entries with `assignment[u] == u` represent unmatched nodes (possible
/// only for [`greedy_max`] with odd `n`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Matching {
    /// `assignment[u] = v`: `u` is matched to `v`.
    pub assignment: Vec<usize>,
    /// Total weight of the matching (self-assignments excluded).
    pub total_weight: i64,
}

impl Matching {
    /// Recomputes the total weight from the assignment, skipping
    /// self-assignments.
    pub fn weight_under(&self, w: impl Fn(usize, usize) -> i64) -> i64 {
        self.assignment
            .iter()
            .enumerate()
            .filter(|&(u, &v)| u != v)
            .map(|(u, &v)| w(u, v))
            .sum()
    }

    /// True if the assignment is a permutation of `0..n`.
    pub fn is_permutation(&self) -> bool {
        let n = self.assignment.len();
        let mut seen = vec![false; n];
        for &v in &self.assignment {
            if v >= n || seen[v] {
                return false;
            }
            seen[v] = true;
        }
        true
    }
}

/// Exact maximum-weight perfect matching via the Hungarian algorithm with
/// potentials, `O(n^3)` time and `O(n)` extra memory beyond weight lookups.
///
/// `w(u, v)` may be any i64 (negative allowed). The returned assignment is
/// a full permutation (self-assignment allowed only if `w` makes it
/// optimal, which cannot happen when `w(u, u)` is minimal, e.g. 0 distances
/// — and even then it remains a valid permutation).
///
/// Meters one tick per shortest-augmenting-path step (each an `O(n)`
/// column scan), so the `O(n^3)` exact matcher can be deadline-capped and
/// fall back to [`greedy_max`] — which is the paper's own Algorithm 1 and
/// still yields a valid (looser) TUB witness.
///
/// ```
/// use dcn_match::hungarian_max;
/// use dcn_guard::prelude::*;
/// let w = [[1i64, 10], [10, 1]];
/// let m = hungarian_max(2, |i, j| w[i][j], &unlimited()).unwrap();
/// assert_eq!(m.total_weight, 20);
/// assert_eq!(m.assignment, vec![1, 0]);
/// ```
pub fn hungarian_max(
    n: usize,
    w: impl Fn(usize, usize) -> i64,
    budget: &Budget,
) -> Result<Matching, BudgetError> {
    let mut meter = budget.meter();
    if n == 0 {
        return Ok(Matching {
            assignment: Vec::new(),
            total_weight: 0,
        });
    }
    // Convert maximization to minimization: cost = -w. The potentials
    // formulation (e-maxx / JV) computes a minimum-cost perfect matching.
    // 1-indexed arrays with a virtual column 0.
    const INF: i64 = i64::MAX / 4;
    let cost = |i: usize, j: usize| -w(i - 1, j - 1);
    let mut u = vec![0i64; n + 1];
    let mut v = vec![0i64; n + 1];
    let mut p = vec![0usize; n + 1]; // p[j] = row assigned to column j
    let mut way = vec![0usize; n + 1];
    for i in 1..=n {
        p[0] = i;
        let mut j0 = 0usize;
        let mut minv = vec![INF; n + 1];
        let mut used = vec![false; n + 1];
        loop {
            meter.tick()?;
            used[j0] = true;
            let i0 = p[j0];
            let mut delta = INF;
            let mut j1 = 0usize;
            for j in 1..=n {
                if !used[j] {
                    let cur = cost(i0, j) - u[i0] - v[j];
                    if cur < minv[j] {
                        minv[j] = cur;
                        way[j] = j0;
                    }
                    if minv[j] < delta {
                        delta = minv[j];
                        j1 = j;
                    }
                }
            }
            for j in 0..=n {
                if used[j] {
                    u[p[j]] += delta;
                    v[j] -= delta;
                } else {
                    minv[j] -= delta;
                }
            }
            j0 = j1;
            if p[j0] == 0 {
                break;
            }
        }
        loop {
            let j1 = way[j0];
            p[j0] = p[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }
    let mut assignment = vec![0usize; n];
    for j in 1..=n {
        assignment[p[j] - 1] = j - 1;
    }
    let total_weight = assignment
        .iter()
        .enumerate()
        .map(|(i, &j)| w(i, j))
        .sum();
    Ok(Matching {
        assignment,
        total_weight,
    })
}

/// The paper's Algorithm 1 (Appendix D): greedy farthest-pair matching.
///
/// Iterates over nodes in index order; each unmatched node `u` is paired
/// with the unmatched node `v` maximizing `w(u, v)`, producing the
/// *symmetric* traffic pattern `(u → v, v → u)` the proof of Theorem 4.1
/// constructs. With odd `n`, the final node stays self-assigned.
pub fn greedy_max(n: usize, w: impl Fn(usize, usize) -> i64) -> Matching {
    let mut assignment: Vec<usize> = (0..n).collect();
    let mut matched = vec![false; n];
    for u in 0..n {
        if matched[u] {
            continue;
        }
        let mut best: Option<(usize, i64)> = None;
        #[allow(clippy::needless_range_loop)]
        for v in 0..n {
            if v != u && !matched[v] {
                let wt = w(u, v);
                if best.is_none_or(|(_, bw)| wt > bw) {
                    best = Some((v, wt));
                }
            }
        }
        if let Some((v, _)) = best {
            assignment[u] = v;
            assignment[v] = u;
            matched[u] = true;
            matched[v] = true;
        }
    }
    let total_weight = assignment
        .iter()
        .enumerate()
        .filter(|&(u, &v)| u != v)
        .map(|(u, &v)| w(u, v))
        .sum();
    Matching {
        assignment,
        total_weight,
    }
}

/// Local-search improvement: repeatedly considers pairs of assignments
/// `(a → b, c → d)` and rewires to `(a → d, c → b)` when that increases
/// total weight. Runs `passes` full sweeps (each `O(n^2)` weight lookups).
/// Preserves permutation-ness; self-assignments never participate.
pub fn improve_2swap(
    n: usize,
    w: impl Fn(usize, usize) -> i64,
    matching: &mut Matching,
    passes: usize,
) {
    for _ in 0..passes {
        let mut improved = false;
        for a in 0..n {
            let mut b = matching.assignment[a];
            if a == b {
                continue;
            }
            for c in (a + 1)..n {
                let d = matching.assignment[c];
                if c == d || d == a || b == c {
                    continue;
                }
                let cur = w(a, b) + w(c, d);
                let alt = w(a, d) + w(c, b);
                if alt > cur {
                    matching.assignment[a] = d;
                    matching.assignment[c] = b;
                    matching.total_weight += alt - cur;
                    b = d;
                    improved = true;
                }
            }
        }
        if !improved {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Brute-force maximum over all permutations (n <= 8).
    fn brute_force(n: usize, w: &dyn Fn(usize, usize) -> i64) -> i64 {
        fn go(
            n: usize,
            w: &dyn Fn(usize, usize) -> i64,
            row: usize,
            used: &mut Vec<bool>,
            acc: i64,
            best: &mut i64,
        ) {
            if row == n {
                *best = (*best).max(acc);
                return;
            }
            for col in 0..n {
                if !used[col] {
                    used[col] = true;
                    go(n, w, row + 1, used, acc + w(row, col), best);
                    used[col] = false;
                }
            }
        }
        let mut best = i64::MIN;
        go(n, w, 0, &mut vec![false; n], 0, &mut best);
        best
    }

    #[test]
    fn hungarian_matches_brute_force_random() {
        let mut rng = StdRng::seed_from_u64(5);
        for trial in 0..30 {
            let n = rng.gen_range(1..=7);
            let mat: Vec<Vec<i64>> = (0..n)
                .map(|_| (0..n).map(|_| rng.gen_range(-20..50)).collect())
                .collect();
            let w = |i: usize, j: usize| mat[i][j];
            let m = hungarian_max(n, w, &Budget::unlimited()).unwrap();
            assert!(m.is_permutation(), "trial {trial}");
            let bf = brute_force(n, &w);
            assert_eq!(m.total_weight, bf, "trial {trial}: n={n} {mat:?}");
        }
    }

    #[test]
    fn hungarian_simple_cases() {
        // 2x2: pick the anti-diagonal.
        let mat = [[1i64, 10], [10, 1]];
        let m = hungarian_max(2, |i, j| mat[i][j], &Budget::unlimited()).unwrap();
        assert_eq!(m.total_weight, 20);
        assert_eq!(m.assignment, vec![1, 0]);
        // n = 0 and n = 1.
        assert_eq!(hungarian_max(0, |_, _| 0, &Budget::unlimited()).unwrap().total_weight, 0);
        let one = hungarian_max(1, |_, _| 7, &Budget::unlimited()).unwrap();
        assert_eq!(one.total_weight, 7);
        assert_eq!(one.assignment, vec![0]);
    }

    #[test]
    fn greedy_is_valid_permutation_and_close() {
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..20 {
            let n = rng.gen_range(2..=16);
            // Symmetric weights (distances).
            let mut mat = vec![vec![0i64; n]; n];
            #[allow(clippy::needless_range_loop)]
            for i in 0..n {
                for j in (i + 1)..n {
                    let d = rng.gen_range(1..10);
                    mat[i][j] = d;
                    mat[j][i] = d;
                }
            }
            let w = |i: usize, j: usize| mat[i][j];
            let g = greedy_max(n, w);
            assert!(g.is_permutation());
            if n % 2 == 0 {
                assert!(g.assignment.iter().enumerate().all(|(u, &v)| u != v));
            }
            let h = hungarian_max(n, w, &Budget::unlimited()).unwrap();
            assert!(g.total_weight <= h.total_weight);
            // Any permutation is a valid TUB witness; greedy should not be
            // pathologically bad on random symmetric weights.
            assert!(g.total_weight > 0);
        }
    }

    #[test]
    fn greedy_odd_n_leaves_one_self_assigned() {
        let m = greedy_max(5, |i, j| (i + j) as i64);
        assert!(m.is_permutation());
        let selfies = m
            .assignment
            .iter()
            .enumerate()
            .filter(|&(u, &v)| u == v)
            .count();
        assert_eq!(selfies, 1);
    }

    #[test]
    fn two_swap_improves_greedy_toward_optimal() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 14;
        let mut mat = vec![vec![0i64; n]; n];
        #[allow(clippy::needless_range_loop)]
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    mat[i][j] = rng.gen_range(1..100);
                }
            }
        }
        let w = |i: usize, j: usize| mat[i][j];
        let mut g = greedy_max(n, w);
        let before = g.total_weight;
        improve_2swap(n, w, &mut g, 20);
        assert!(g.is_permutation());
        assert!(g.total_weight >= before);
        assert_eq!(g.total_weight, g.weight_under(w));
        let h = hungarian_max(n, w, &Budget::unlimited()).unwrap();
        assert!(g.total_weight <= h.total_weight);
    }

    #[test]
    fn budget_caps_hungarian() {
        let mat = [[1i64, 10], [10, 1]];
        let tiny = Budget::unlimited().with_iter_cap(1);
        assert!(matches!(
            hungarian_max(2, |i, j| mat[i][j], &tiny),
            Err(BudgetError::IterationsExceeded { cap: 1 })
        ));
        let roomy = Budget::unlimited().with_iter_cap(1000);
        let m = hungarian_max(2, |i, j| mat[i][j], &roomy).unwrap();
        assert_eq!(m.total_weight, 20);
    }

    #[test]
    fn weight_under_skips_self_assignments() {
        let m = Matching {
            assignment: vec![1, 0, 2],
            total_weight: 0,
        };
        assert_eq!(m.weight_under(|_, _| 5), 10);
    }
}

/// Unweighted bipartite perfect matching (Kuhn's augmenting-path
/// algorithm, `O(V * E)`). `adj[u]` lists the right-side vertices `u` may
/// match. Returns `assignment[u] = v` covering every left vertex, or
/// `None` when no perfect matching exists.
///
/// Used by the Birkhoff–von Neumann decomposition (Theorem 2.1 of the
/// paper): the support of a saturated hose traffic matrix always contains
/// a perfect matching, which is peeled off as a permutation component.
pub fn bipartite_perfect_matching(n: usize, adj: &[Vec<usize>]) -> Option<Vec<usize>> {
    assert_eq!(adj.len(), n, "adjacency must cover every left vertex");
    let mut match_right: Vec<Option<usize>> = vec![None; n];
    let mut match_left: Vec<Option<usize>> = vec![None; n];

    fn try_kuhn(
        u: usize,
        adj: &[Vec<usize>],
        visited: &mut [bool],
        match_right: &mut [Option<usize>],
        match_left: &mut [Option<usize>],
    ) -> bool {
        for &v in &adj[u] {
            if visited[v] {
                continue;
            }
            visited[v] = true;
            let free = match match_right[v] {
                None => true,
                Some(w) => try_kuhn(w, adj, visited, match_right, match_left),
            };
            if free {
                match_right[v] = Some(u);
                match_left[u] = Some(v);
                return true;
            }
        }
        false
    }

    for u in 0..n {
        let mut visited = vec![false; n];
        if !try_kuhn(u, adj, &mut visited, &mut match_right, &mut match_left) {
            return None;
        }
    }
    // Every left vertex was matched by try_kuhn; collect() re-checks that
    // instead of asserting it.
    match_left.into_iter().collect()
}

#[cfg(test)]
mod bipartite_tests {
    use super::*;

    #[test]
    fn identity_matching() {
        let adj = vec![vec![0], vec![1], vec![2]];
        assert_eq!(bipartite_perfect_matching(3, &adj), Some(vec![0, 1, 2]));
    }

    #[test]
    fn forced_chain() {
        // 0 can take {0,1}, 1 only {0}, so 0 must take 1.
        let adj = vec![vec![0, 1], vec![0]];
        assert_eq!(bipartite_perfect_matching(2, &adj), Some(vec![1, 0]));
    }

    #[test]
    fn infeasible_detected() {
        // Two left vertices forced onto the same right vertex.
        let adj = vec![vec![0], vec![0]];
        assert_eq!(bipartite_perfect_matching(2, &adj), None);
    }

    #[test]
    fn complete_bipartite_always_matches() {
        let n = 6;
        let adj: Vec<Vec<usize>> = (0..n).map(|_| (0..n).collect()).collect();
        let m = bipartite_perfect_matching(n, &adj).unwrap();
        let mut seen = vec![false; n];
        for &v in &m {
            assert!(!seen[v]);
            seen[v] = true;
        }
    }

    #[test]
    fn hall_violation() {
        // Three lefts restricted to two rights.
        let adj = vec![vec![0, 1], vec![0, 1], vec![0, 1]];
        assert_eq!(bipartite_perfect_matching(3, &adj), None);
    }
}
