//! The spill-to-disk work queue: directory layout, atomic file protocol,
//! and the unit/result record formats.
//!
//! Layout under one queue root:
//!
//! ```text
//! pending/<id>.json            {"id", "attempt", "payload"}
//! claimed/<id>.<pid>.json      same record, renamed here by the claiming worker
//! results/fleet-result-<id>.json
//!                              {"id", "attempt", "ok": …} or {…, "err": "…"}
//! quarantine/<id>.json         {"id", "attempts", "reason"}
//! hb/<pid>.json                {"pid", "id", "attempt"} — worker heartbeat
//! ```
//!
//! Every write goes through a per-process uniquely named temp file plus
//! `rename`, and every claim *is* a rename, so concurrent workers never
//! observe torn records and exactly one wins each unit.

use crate::FleetError;
use dcn_obs::json::Json;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// The result-record prefix ("kind" in `dcn-cache` terms): completed
/// units live at `results/fleet-result-<id>.json`, which makes crash
/// recovery a [`dcn_cache::scan_keys`] call over the results directory.
pub const RESULT_KIND: &str = "fleet-result";

/// One serializable unit of sweep work.
///
/// The `id` doubles as the work's identity across crashes and restarts —
/// sweeps derive it from `dcn-cache`'s 128-bit content keys (rendered as
/// hex) so the same cell always maps to the same queue files. The
/// `payload` must be self-contained: a worker reconstructs the full cell
/// from it and nothing else.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkUnit {
    /// Stable content-derived identifier; must match
    /// [`id_is_filename_safe`] since it becomes part of file names.
    pub id: String,
    /// Self-contained JSON description of the work.
    pub payload: Json,
}

/// Ids become file names and are parsed back out of `<id>.<pid>.json`
/// claim names, so they are restricted to `[A-Za-z0-9_-]` (no dots, no
/// separators). Cache-key hex ids satisfy this trivially.
pub fn id_is_filename_safe(id: &str) -> bool {
    !id.is_empty()
        && id
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
}

/// Resolved subdirectories of one queue root.
#[derive(Debug, Clone)]
pub(crate) struct QueueDirs {
    pub(crate) pending: PathBuf,
    pub(crate) claimed: PathBuf,
    pub(crate) results: PathBuf,
    pub(crate) quarantine: PathBuf,
    pub(crate) heartbeats: PathBuf,
}

impl QueueDirs {
    /// Opens (creating if needed) the queue layout under `root`.
    pub(crate) fn open(root: &Path) -> Result<QueueDirs, FleetError> {
        let dirs = QueueDirs {
            pending: root.join("pending"),
            claimed: root.join("claimed"),
            results: root.join("results"),
            quarantine: root.join("quarantine"),
            heartbeats: root.join("hb"),
        };
        for d in [
            &dirs.pending,
            &dirs.claimed,
            &dirs.results,
            &dirs.quarantine,
            &dirs.heartbeats,
        ] {
            fs::create_dir_all(d).map_err(|source| FleetError::Io {
                path: d.clone(),
                source,
            })?;
        }
        Ok(dirs)
    }

    pub(crate) fn pending_path(&self, id: &str) -> PathBuf {
        self.pending.join(format!("{id}.json"))
    }

    pub(crate) fn claim_path(&self, id: &str, pid: u32) -> PathBuf {
        self.claimed.join(format!("{id}.{pid}.json"))
    }

    pub(crate) fn result_path(&self, id: &str) -> PathBuf {
        self.results.join(format!("{RESULT_KIND}-{id}.json"))
    }

    pub(crate) fn quarantine_path(&self, id: &str) -> PathBuf {
        self.quarantine.join(format!("{id}.json"))
    }

    pub(crate) fn heartbeat_path(&self, pid: u32) -> PathBuf {
        self.heartbeats.join(format!("{pid}.json"))
    }
}

/// A pending/claimed unit record: the unit plus its attempt number.
#[derive(Debug, Clone)]
pub(crate) struct UnitRecord {
    pub(crate) id: String,
    pub(crate) attempt: u64,
    pub(crate) payload: Json,
}

impl UnitRecord {
    pub(crate) fn to_json(&self) -> Json {
        Json::obj([
            ("id", Json::Str(self.id.clone())),
            ("attempt", Json::Num(self.attempt as f64)),
            ("payload", self.payload.clone()),
        ])
    }

    pub(crate) fn from_json(json: &Json) -> Result<UnitRecord, String> {
        let id = json
            .get("id")
            .and_then(Json::as_str)
            .ok_or("unit record missing id")?
            .to_string();
        let attempt = json
            .get("attempt")
            .and_then(Json::as_u64)
            .ok_or("unit record missing attempt")?;
        let payload = json.get("payload").ok_or("unit record missing payload")?;
        Ok(UnitRecord {
            id,
            attempt,
            payload: payload.clone(),
        })
    }
}

/// Writes `json` to `final_path` atomically: the bytes land in a temp
/// file whose name is unique to this process (pid + a process-local
/// counter), then a single `rename` publishes them. Readers of
/// `final_path` therefore always see a complete record.
pub(crate) fn write_json_atomic(final_path: &Path, json: &Json) -> Result<(), FleetError> {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = final_path.parent().unwrap_or(Path::new("."));
    let seq = SEQ.fetch_add(1, Ordering::Relaxed);
    let tmp = dir.join(format!(".tmp-{}-{seq}", std::process::id()));
    let io_err = |source| FleetError::Io {
        path: final_path.to_path_buf(),
        source,
    };
    if let Err(e) = fs::write(&tmp, json.to_string_pretty()) {
        let _ = fs::remove_file(&tmp);
        return Err(io_err(e));
    }
    if let Err(e) = fs::rename(&tmp, final_path) {
        let _ = fs::remove_file(&tmp);
        return Err(io_err(e));
    }
    Ok(())
}

/// Reads and parses one JSON record file.
pub(crate) fn read_json(path: &Path) -> Result<Json, String> {
    let text = fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
    Json::parse(&text).map_err(|e| format!("parse {}: {e}", path.display()))
}

/// Lists the `<stem>.json` stems in a directory, sorted for determinism.
/// A missing directory reads as empty.
pub(crate) fn list_json_stems(dir: &Path) -> Vec<String> {
    let mut out = Vec::new();
    let Ok(entries) = fs::read_dir(dir) else {
        return out;
    };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(stem) = name.strip_suffix(".json") {
            out.push(stem.to_string());
        }
    }
    out.sort();
    out
}

/// Writes the quarantine record for a unit.
pub(crate) fn write_quarantine(
    dirs: &QueueDirs,
    id: &str,
    attempts: u64,
    reason: &str,
) -> Result<(), FleetError> {
    let record = Json::obj([
        ("id", Json::Str(id.to_string())),
        ("attempts", Json::Num(attempts as f64)),
        ("reason", Json::Str(reason.to_string())),
    ]);
    write_json_atomic(&dirs.quarantine_path(id), &record)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_reject_path_mischief() {
        assert!(id_is_filename_safe("0123abcdef-XYZ_9"));
        assert!(!id_is_filename_safe(""));
        assert!(!id_is_filename_safe("a.b"));
        assert!(!id_is_filename_safe("a/b"));
        assert!(!id_is_filename_safe(".."));
    }

    #[test]
    fn unit_record_round_trips() {
        let rec = UnitRecord {
            id: "abc123".to_string(),
            attempt: 3,
            payload: Json::obj([("x", Json::Num(7.0))]),
        };
        let back = UnitRecord::from_json(&rec.to_json()).unwrap();
        assert_eq!(back.id, "abc123");
        assert_eq!(back.attempt, 3);
        assert_eq!(back.payload.get("x").and_then(Json::as_u64), Some(7));
    }
}
