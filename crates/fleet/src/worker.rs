//! The worker side of the queue: claim, heartbeat, solve, publish.
//!
//! A worker is just a loop over the pending directory. Claiming is an
//! atomic rename into `claimed/<id>.<pid>.json` (exactly one process
//! wins), a heartbeat records which unit this pid is holding, and the
//! result is published with another atomic rename. Solve *errors* are
//! results (`{"err": …}` records) — only a crash (abort, SIGKILL, OOM)
//! leaves a claim behind for the supervisor to retry.

use crate::queue::{
    list_json_stems, read_json, write_json_atomic, write_quarantine, QueueDirs, UnitRecord,
    WorkUnit,
};
use crate::FleetError;
use dcn_obs::json::Json;
use std::fs;
use std::path::Path;
use std::time::Duration;

/// Runs the worker loop over the queue at `root` until no pending work
/// remains, applying `solve` to each claimed unit. Returns the number of
/// units this worker published results for.
///
/// `solve` receives the unit and its attempt number (0 on first try);
/// payloads whose behaviour should differ on retry — none in production,
/// but kill-injection tests rely on it — can branch on the attempt.
pub fn worker_main(
    root: &Path,
    solve: impl Fn(&WorkUnit, u64) -> Result<Json, String>,
) -> Result<usize, FleetError> {
    let dirs = QueueDirs::open(root)?;
    let pid = std::process::id();
    let mut published = 0usize;
    loop {
        let stems = list_json_stems(&dirs.pending);
        if stems.is_empty() {
            break;
        }
        let mut claimed_any = false;
        for id in stems {
            let claim = dirs.claim_path(&id, pid);
            if fs::rename(dirs.pending_path(&id), &claim).is_err() {
                continue; // a sibling won the claim race
            }
            claimed_any = true;
            let rec = match read_json(&claim).and_then(|j| UnitRecord::from_json(&j)) {
                Ok(r) => r,
                Err(reason) => {
                    // An unreadable unit can never succeed on retry:
                    // quarantine it immediately so the sweep reports it
                    // instead of crash-looping.
                    write_quarantine(&dirs, &id, 0, &format!("unreadable unit record: {reason}"))?;
                    let _ = fs::remove_file(&claim);
                    continue;
                }
            };
            write_json_atomic(
                &dirs.heartbeat_path(pid),
                &Json::obj([
                    ("pid", Json::Num(pid as f64)),
                    ("id", Json::Str(rec.id.clone())),
                    ("attempt", Json::Num(rec.attempt as f64)),
                ]),
            )?;
            let unit = WorkUnit {
                id: rec.id.clone(),
                payload: rec.payload.clone(),
            };
            let outcome = match solve(&unit, rec.attempt) {
                Ok(v) => ("ok", v),
                Err(e) => ("err", Json::Str(e)),
            };
            let record = Json::obj([
                ("id", Json::Str(rec.id.clone())),
                ("attempt", Json::Num(rec.attempt as f64)),
                outcome,
            ]);
            write_json_atomic(&dirs.result_path(&rec.id), &record)?;
            let _ = fs::remove_file(&claim);
            published += 1;
        }
        if !claimed_any {
            // Everything listed was claimed by siblings between the
            // listing and our rename; back off briefly before re-listing.
            std::thread::sleep(Duration::from_millis(2));
        }
    }
    let _ = fs::remove_file(dirs.heartbeat_path(pid));
    Ok(published)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::write_json_atomic as atomic;

    fn scratch(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("dcn-fleet-worker-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn worker_drains_pending_in_process() {
        let root = scratch("drain");
        let dirs = QueueDirs::open(&root).unwrap();
        for i in 0..5u64 {
            let rec = UnitRecord {
                id: format!("unit-{i}"),
                attempt: 0,
                payload: Json::obj([("x", Json::Num(i as f64))]),
            };
            atomic(&dirs.pending_path(&rec.id), &rec.to_json()).unwrap();
        }
        let n = worker_main(&root, |unit, attempt| {
            assert_eq!(attempt, 0);
            let x = unit.payload.get("x").and_then(Json::as_u64).ok_or("no x")?;
            Ok(Json::obj([("sq", Json::Num((x * x) as f64))]))
        })
        .unwrap();
        assert_eq!(n, 5);
        assert!(list_json_stems(&dirs.pending).is_empty());
        let result = read_json(&dirs.result_path("unit-3")).unwrap();
        assert_eq!(result.get("ok").and_then(|o| o.get("sq")).and_then(Json::as_u64), Some(9));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn solve_errors_publish_err_records_not_crashes() {
        let root = scratch("err");
        let dirs = QueueDirs::open(&root).unwrap();
        let rec = UnitRecord {
            id: "bad".to_string(),
            attempt: 1,
            payload: Json::Null,
        };
        atomic(&dirs.pending_path(&rec.id), &rec.to_json()).unwrap();
        let n = worker_main(&root, |_, _| Err("synthetic failure".to_string())).unwrap();
        assert_eq!(n, 1);
        let result = read_json(&dirs.result_path("bad")).unwrap();
        assert_eq!(result.get("err").and_then(Json::as_str), Some("synthetic failure"));
        assert_eq!(result.get("attempt").and_then(Json::as_u64), Some(1));
        let _ = fs::remove_dir_all(&root);
    }
}
