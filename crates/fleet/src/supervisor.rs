//! The supervisor: enqueue, spawn, lease, retry, quarantine, merge.
//!
//! [`run_fleet`] owns the whole lifecycle of one sharded sweep. It first
//! recovers — results already on disk (from a previous supervisor that
//! was killed mid-run) are counted done without re-enqueueing, and stale
//! claims left by dead workers are re-queued with a bumped attempt. It
//! then polls: releasing backed-off retries, reaping crashed children,
//! SIGKILLing workers that hold a claim past its lease, and topping the
//! worker pool back up while pending work remains. Termination is exact:
//! every input unit ends either *done* (a result record exists) or
//! *quarantined* (an explicit report), and the merge walks the input
//! order so the caller sees results exactly as `par_map` would have
//! returned them.

use crate::queue::{
    id_is_filename_safe, list_json_stems, read_json, write_json_atomic, write_quarantine,
    QueueDirs, UnitRecord, WorkUnit,
};
use crate::FleetError;
use dcn_guard::{Budget, Lease};
use dcn_obs::json::Json;
use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};
use std::process::{Child, Command};
use std::time::{Duration, Instant};

/// Supervision parameters for one fleet run.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Number of worker processes to keep alive while work remains.
    pub workers: usize,
    /// Queue root directory (pending/claimed/results/quarantine/hb live
    /// under it).
    pub root: PathBuf,
    /// Default per-claim wall-clock lease; the effective lease is capped
    /// by the run budget's remaining wall time ([`Lease::from_budget`]).
    pub lease: Duration,
    /// Retries allowed per unit after its first crashed attempt; a unit
    /// crashing on attempt `max_retries` (its `max_retries + 1`-th
    /// worker kill) is quarantined.
    pub max_retries: u64,
    /// Base of the exponential retry backoff (`base * 2^attempt`).
    pub backoff_base: Duration,
    /// Supervisor poll interval.
    pub poll: Duration,
    /// Test hook: after this many units have completed, SIGKILL one live
    /// worker exactly once (`DCN_FLEET_INJECT_KILL_AFTER`).
    pub inject_kill_after: Option<u64>,
}

/// Reads `DCN_FLEET_WORKERS` (default 1). Sweeps shard only when this is
/// at least 2 — one worker would pay the process-spawn tax for no
/// isolation gain.
pub fn workers_from_env() -> usize {
    dcn_guard::env::FLEET_WORKERS.parsed::<usize>().unwrap_or(1)
}

fn env_u64(var: &dcn_guard::env::EnvVar, default: u64) -> u64 {
    var.parsed::<u64>().unwrap_or(default)
}

impl FleetConfig {
    /// Builds a config from the environment:
    /// `DCN_FLEET_WORKERS` (worker count, default 1),
    /// `DCN_FLEET_DIR` (queue root, default `default_root`),
    /// `DCN_FLEET_LEASE_SECS` (default 600),
    /// `DCN_FLEET_MAX_RETRIES` (default 2),
    /// `DCN_FLEET_BACKOFF_MS` (default 50), and the
    /// `DCN_FLEET_INJECT_KILL_AFTER` test hook.
    pub fn from_env(default_root: &Path) -> FleetConfig {
        let root = dcn_guard::env::FLEET_DIR
            .get_os()
            .map(PathBuf::from)
            .unwrap_or_else(|| default_root.to_path_buf());
        FleetConfig {
            workers: workers_from_env().max(1),
            root,
            lease: Duration::from_secs(env_u64(&dcn_guard::env::FLEET_LEASE_SECS, 600)),
            max_retries: env_u64(&dcn_guard::env::FLEET_MAX_RETRIES, 2),
            backoff_base: Duration::from_millis(env_u64(&dcn_guard::env::FLEET_BACKOFF_MS, 50)),
            poll: Duration::from_millis(20),
            inject_kill_after: dcn_guard::env::FLEET_INJECT_KILL_AFTER.parsed::<u64>(),
        }
    }
}

/// Final state of one input unit after a fleet run.
#[derive(Debug, Clone, PartialEq)]
pub enum UnitOutcome {
    /// The worker's `solve` succeeded; the payload it returned.
    Ok(Json),
    /// The worker's `solve` returned an error (a *result*, not a crash).
    Err(String),
    /// The unit exhausted its retries killing workers and was skipped.
    Quarantined(String),
}

/// Everything a caller learns from one fleet run.
#[derive(Debug)]
pub struct FleetReport {
    /// One outcome per input unit, in input order.
    pub outcomes: Vec<UnitOutcome>,
    /// Units whose results were already on disk at startup (crash
    /// recovery from a previous supervisor).
    pub recovered: usize,
    /// Units re-enqueued after a worker crash or lease kill.
    pub retries: u64,
    /// Worker processes that exited abnormally (including lease kills
    /// and injected kills).
    pub crashes: u64,
    /// Workers SIGKILLed for holding a claim past its lease.
    pub lease_kills: u64,
    /// Units quarantined as poisonous.
    pub quarantined: usize,
}

/// A claim observed in `claimed/`: parsed `<id>.<pid>` filename parts.
fn parse_claim(stem: &str) -> Option<(String, u32)> {
    let (id, pid) = stem.rsplit_once('.')?;
    Some((id.to_string(), pid.parse::<u32>().ok()?))
}

fn kill_all(children: &mut Vec<(u32, Child)>) {
    for (_, child) in children.iter_mut() {
        let _ = child.kill();
        let _ = child.wait();
    }
    children.clear();
}

/// Runs `units` through the queue at `cfg.root` using up to
/// `cfg.workers` child processes built by `make_worker`, and merges the
/// per-unit outcomes back in input order. See the module docs for the
/// full lifecycle; `budget` bounds the whole supervision loop (checked
/// every poll) and caps the per-claim lease.
pub fn run_fleet(
    cfg: &FleetConfig,
    units: &[WorkUnit],
    budget: &Budget,
    make_worker: &dyn Fn() -> Command,
) -> Result<FleetReport, FleetError> {
    let dirs = QueueDirs::open(&cfg.root)?;
    let mut want: BTreeSet<String> = BTreeSet::new();
    for u in units {
        if !id_is_filename_safe(&u.id) {
            return Err(FleetError::Config(format!(
                "unit id {:?} is not filename-safe ([A-Za-z0-9_-] only)",
                u.id
            )));
        }
        if !want.insert(u.id.clone()) {
            return Err(FleetError::Config(format!("duplicate unit id {:?}", u.id)));
        }
    }
    let lease = Lease::from_budget(budget, cfg.lease);

    // --- Recovery: results and quarantines already on disk count as
    // settled; stale claims from a dead supervisor's workers re-queue.
    let mut done: BTreeSet<String> = BTreeSet::new();
    let scan_done = |done: &mut BTreeSet<String>| {
        for id in dcn_cache::scan_keys(&dirs.results, crate::queue::RESULT_KIND) {
            if want.contains(&id) {
                done.insert(id);
            }
        }
    };
    scan_done(&mut done);
    let recovered = done.len();
    dcn_obs::counter!(dcn_obs::names::FLEET_UNITS_RECOVERED).add(recovered as u64);

    let scan_quarantine = |q: &mut BTreeMap<String, String>| {
        for id in list_json_stems(&dirs.quarantine) {
            if want.contains(&id) && !q.contains_key(&id) {
                let reason = read_json(&dirs.quarantine_path(&id))
                    .ok()
                    .and_then(|j| j.get("reason").and_then(Json::as_str).map(str::to_string))
                    .unwrap_or_else(|| "unreadable quarantine record".to_string());
                q.insert(id, reason);
            }
        }
    };
    let mut quarantined: BTreeMap<String, String> = BTreeMap::new();
    scan_quarantine(&mut quarantined);

    let mut retries = 0u64;
    let mut crashes = 0u64;
    let mut lease_kills = 0u64;
    // Backed-off retries: (release time, record to re-enqueue). Leases
    // and backoff are wall-clock mechanisms (fleet is a lint
    // CLOCK_CRATE); unit *results* never depend on time.
    let mut backoff: Vec<(Instant, UnitRecord)> = Vec::new();
    let now0 = Instant::now();

    // A unit crashed (or went stale): bump its attempt and either
    // schedule a backed-off retry or quarantine it as poisonous.
    let requeue = |rec: UnitRecord,
                   backoff: &mut Vec<(Instant, UnitRecord)>,
                   quarantined: &mut BTreeMap<String, String>,
                   retries: &mut u64,
                   at: Instant|
     -> Result<(), FleetError> {
        let attempt = rec.attempt + 1;
        if attempt > cfg.max_retries {
            let reason = format!(
                "poison unit: crashed its worker on all {attempt} attempts (max_retries {})",
                cfg.max_retries
            );
            write_quarantine(&dirs, &rec.id, attempt, &reason)?;
            dcn_obs::counter!(dcn_obs::names::FLEET_UNITS_QUARANTINED).inc();
            quarantined.insert(rec.id.clone(), reason);
            return Ok(());
        }
        *retries += 1;
        dcn_obs::counter!(dcn_obs::names::FLEET_UNITS_RETRIED).inc();
        let delay = cfg.backoff_base * 2u32.saturating_pow(rec.attempt.min(16) as u32);
        backoff.push((
            at + delay.min(Duration::from_secs(2)),
            UnitRecord { attempt, ..rec },
        ));
        Ok(())
    };

    for stem in list_json_stems(&dirs.claimed) {
        let path = dirs.claimed.join(format!("{stem}.json"));
        let Some((id, _pid)) = parse_claim(&stem) else {
            continue;
        };
        if !want.contains(&id) {
            continue;
        }
        // The claim's owner predates this supervisor (we have spawned no
        // workers yet). If its result made it to disk the claim is just
        // debris; otherwise the unit died with its worker — retry it.
        if !done.contains(&id) && !quarantined.contains_key(&id) {
            match read_json(&path).and_then(|j| UnitRecord::from_json(&j)) {
                Ok(rec) => requeue(rec, &mut backoff, &mut quarantined, &mut retries, now0)?,
                Err(reason) => {
                    write_quarantine(&dirs, &id, 0, &format!("unreadable stale claim: {reason}"))?;
                    dcn_obs::counter!(dcn_obs::names::FLEET_UNITS_QUARANTINED).inc();
                    quarantined.insert(id.clone(), format!("unreadable stale claim: {reason}"));
                }
            }
        }
        let _ = std::fs::remove_file(&path);
    }

    // --- Enqueue whatever is still missing.
    let already_pending: BTreeSet<String> = list_json_stems(&dirs.pending).into_iter().collect();
    let mut enqueued = 0u64;
    for u in units {
        if done.contains(&u.id)
            || quarantined.contains_key(&u.id)
            || already_pending.contains(&u.id)
            || backoff.iter().any(|(_, r)| r.id == u.id)
        {
            continue;
        }
        let rec = UnitRecord {
            id: u.id.clone(),
            attempt: 0,
            payload: u.payload.clone(),
        };
        write_json_atomic(&dirs.pending_path(&u.id), &rec.to_json())?;
        enqueued += 1;
    }
    dcn_obs::counter!(dcn_obs::names::FLEET_UNITS_ENQUEUED).add(enqueued);

    // --- Supervision loop.
    let mut children: Vec<(u32, Child)> = Vec::new();
    let mut claim_seen: BTreeMap<String, Instant> = BTreeMap::new();
    let mut injected = cfg.inject_kill_after.is_none();
    let mut spawn_failures = 0u32;
    let mut meter = budget.meter();
    let report = loop {
        if let Err(e) = meter.tick() {
            kill_all(&mut children);
            return Err(FleetError::Budget(e));
        }
        scan_done(&mut done);
        scan_quarantine(&mut quarantined);
        if done.len() + quarantined.len() >= want.len() {
            break Ok(());
        }
        let now = Instant::now();

        // Release retries whose backoff elapsed.
        let mut due = Vec::new();
        backoff.retain(|(at, rec)| {
            if *at <= now {
                due.push(rec.clone());
                false
            } else {
                true
            }
        });
        for rec in due {
            if done.contains(&rec.id) {
                continue; // an orphaned worker finished it meanwhile
            }
            write_json_atomic(&dirs.pending_path(&rec.id), &rec.to_json())?;
        }

        // Reap exited children; abnormal exits retry their held claims.
        let mut alive: Vec<(u32, Child)> = Vec::new();
        for (pid, mut child) in children.drain(..) {
            match child.try_wait() {
                Ok(Some(status)) => {
                    let _ = std::fs::remove_file(dirs.heartbeat_path(pid));
                    if !status.success() {
                        crashes += 1;
                        dcn_obs::counter!(dcn_obs::names::FLEET_WORKER_CRASHES).inc();
                        for stem in list_json_stems(&dirs.claimed) {
                            let Some((id, owner)) = parse_claim(&stem) else {
                                continue;
                            };
                            if owner != pid {
                                continue;
                            }
                            let path = dirs.claimed.join(format!("{stem}.json"));
                            if !done.contains(&id) && !quarantined.contains_key(&id) {
                                if let Ok(rec) =
                                    read_json(&path).and_then(|j| UnitRecord::from_json(&j))
                                {
                                    requeue(
                                        rec,
                                        &mut backoff,
                                        &mut quarantined,
                                        &mut retries,
                                        now,
                                    )?;
                                }
                            }
                            let _ = std::fs::remove_file(&path);
                        }
                    }
                }
                Ok(None) => alive.push((pid, child)),
                Err(_) => alive.push((pid, child)), // transient; retry next poll
            }
        }
        children = alive;

        // Lease enforcement: a claim first observed more than one lease
        // ago means its worker is wedged — SIGKILL it; the reap pass
        // above then recycles the claim like any other crash.
        let current_claims: BTreeSet<String> = list_json_stems(&dirs.claimed).into_iter().collect();
        claim_seen.retain(|stem, _| current_claims.contains(stem));
        for stem in &current_claims {
            let first = *claim_seen.entry(stem.clone()).or_insert(now);
            if !lease.is_expired(now.saturating_duration_since(first)) {
                continue;
            }
            let Some((id, owner)) = parse_claim(stem) else {
                continue;
            };
            if let Some((_, child)) = children.iter_mut().find(|(p, _)| *p == owner) {
                let _ = child.kill();
                lease_kills += 1;
                dcn_obs::counter!(dcn_obs::names::FLEET_WORKER_LEASE_KILLS).inc();
            } else if want.contains(&id) {
                // Orphan claim (owner is not ours and never reaped):
                // recycle it directly.
                let path = dirs.claimed.join(format!("{stem}.json"));
                if !done.contains(&id) && !quarantined.contains_key(&id) {
                    if let Ok(rec) = read_json(&path).and_then(|j| UnitRecord::from_json(&j)) {
                        requeue(rec, &mut backoff, &mut quarantined, &mut retries, now)?;
                    }
                }
                let _ = std::fs::remove_file(&path);
            }
            claim_seen.remove(stem);
        }

        // Kill-injection test hook: once enough units completed, crash
        // one live worker to exercise the retry path end-to-end.
        if let Some(after) = cfg.inject_kill_after {
            if !injected && (done.len() as u64) >= after && !children.is_empty() {
                let _ = children[0].1.kill();
                injected = true;
            }
        }

        // Top the pool back up while claimable work remains.
        let pending_count = list_json_stems(&dirs.pending).len();
        while children.len() < cfg.workers && pending_count > 0 {
            match make_worker().spawn() {
                Ok(child) => {
                    spawn_failures = 0;
                    dcn_obs::counter!(dcn_obs::names::FLEET_WORKER_SPAWNS).inc();
                    children.push((child.id(), child));
                }
                Err(e) => {
                    spawn_failures += 1;
                    if spawn_failures >= 8 {
                        kill_all(&mut children);
                        return Err(FleetError::Spawn(format!(
                            "worker spawn failed {spawn_failures} times in a row: {e}"
                        )));
                    }
                    break; // try again next poll
                }
            }
        }

        // Exactness check: with nothing running, queued, claimed, or
        // backing off, unresolved units can never resolve.
        if children.is_empty()
            && pending_count == 0
            && backoff.is_empty()
            && current_claims.is_empty()
            && spawn_failures == 0
        {
            scan_done(&mut done);
            scan_quarantine(&mut quarantined);
            if done.len() + quarantined.len() >= want.len() {
                break Ok(());
            }
            let missing: Vec<&String> = want
                .iter()
                .filter(|id| !done.contains(*id) && !quarantined.contains_key(*id))
                .take(4)
                .collect();
            break Err(FleetError::Stalled(format!(
                "{} unit(s) unaccounted for with no work in flight (e.g. {missing:?})",
                want.len() - done.len() - quarantined.len()
            )));
        }

        std::thread::sleep(cfg.poll);
    };
    kill_all(&mut children);
    report?;
    dcn_obs::counter!(dcn_obs::names::FLEET_UNITS_COMPLETED)
        .add((done.len() - recovered) as u64);

    // --- Deterministic merge, in input order.
    let mut outcomes = Vec::with_capacity(units.len());
    for u in units {
        if let Some(reason) = quarantined.get(&u.id) {
            outcomes.push(UnitOutcome::Quarantined(reason.clone()));
            continue;
        }
        let path = dirs.result_path(&u.id);
        let outcome = match read_json(&path) {
            Ok(json) => {
                if let Some(ok) = json.get("ok") {
                    UnitOutcome::Ok(ok.clone())
                } else if let Some(err) = json.get("err").and_then(Json::as_str) {
                    UnitOutcome::Err(err.to_string())
                } else {
                    UnitOutcome::Err(format!(
                        "malformed result record {} (neither ok nor err)",
                        path.display()
                    ))
                }
            }
            Err(reason) => UnitOutcome::Err(format!("unreadable result record: {reason}")),
        };
        outcomes.push(outcome);
    }
    Ok(FleetReport {
        outcomes,
        recovered,
        retries,
        crashes,
        lease_kills,
        quarantined: quarantined.len(),
    })
}
