#![forbid(unsafe_code)]
//! dcn-fleet: crash-tolerant multi-process sweep execution.
//!
//! [`dcn_exec::Pool::par_map`] fans a sweep out across threads inside one
//! process — fast, but a single crash (OOM kill, solver abort, node
//! preemption) loses the whole run. This crate is the multi-*process*
//! analogue for the paper's long sweep campaigns: work units are
//! serialized into a spill-to-disk queue, `DCN_FLEET_WORKERS` child
//! processes claim and solve them against the shared `DCN_CACHE_DIR`
//! tier, and the supervisor merges completed cells back **in input
//! order**, so the merged output is byte-identical to the single-process
//! path at any worker count.
//!
//! # Robustness model
//!
//! - **Claims are atomic renames**: a pending unit file is renamed into
//!   `claimed/<id>.<pid>.json`; exactly one worker wins the race.
//! - **Results are atomic renames** too, named
//!   `fleet-result-<id>.json` so crash recovery is a directory scan
//!   (via [`dcn_cache::scan_keys`]) — restarting a supervisor
//!   re-enqueues only the units with no result on disk.
//! - **Leases**: each claim is granted a wall-clock lease derived from
//!   the run's [`dcn_guard::Budget`] (see [`dcn_guard::Lease`]); a
//!   worker that holds a claim past its lease is SIGKILLed and the unit
//!   is retried.
//! - **Crash detection**: child exit status plus per-worker heartbeat
//!   files (`hb/<pid>.json`, recording which unit a pid was holding).
//! - **Bounded retry with exponential backoff**: a unit whose worker
//!   crashed is re-enqueued with `attempt + 1` after
//!   `backoff_base * 2^attempt`.
//! - **Poison quarantine**: a unit that out-lives `max_retries`
//!   attempts (i.e. killed `max_retries + 1` workers) is quarantined
//!   and *reported*, not retried forever — the rest of the sweep still
//!   completes.
//!
//! Duplicate computation is tolerated by design: an orphaned worker
//! from a killed supervisor may still write a result another worker
//! recomputes. Every cached computation in this workspace is
//! deterministic in its payload, so last-writer-wins renames always
//! converge on identical bytes.

#![warn(missing_docs)]

mod queue;
mod supervisor;
mod worker;

pub use queue::{WorkUnit, RESULT_KIND};
pub use supervisor::{run_fleet, workers_from_env, FleetConfig, FleetReport, UnitOutcome};
pub use worker::worker_main;

use std::path::{Path, PathBuf};

/// Error from fleet supervision or worker execution.
#[derive(Debug)]
pub enum FleetError {
    /// A filesystem operation on the queue directory failed.
    Io {
        /// The path the operation targeted.
        path: PathBuf,
        /// The underlying IO error.
        source: std::io::Error,
    },
    /// The supervising budget expired or was cancelled.
    Budget(dcn_guard::BudgetError),
    /// Invalid configuration or unit list (duplicate/unsafe ids, zero workers).
    Config(String),
    /// Worker processes could not be spawned.
    Spawn(String),
    /// The queue reached a state with units unaccounted for but nothing
    /// pending, claimed, backing off, or running — a supervisor bug or
    /// external interference with the queue directory.
    Stalled(String),
}

impl std::fmt::Display for FleetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FleetError::Io { path, source } => {
                write!(f, "fleet queue IO error at {}: {source}", path.display())
            }
            FleetError::Budget(e) => write!(f, "fleet budget exhausted: {e}"),
            FleetError::Config(m) => write!(f, "fleet configuration error: {m}"),
            FleetError::Spawn(m) => write!(f, "fleet worker spawn failed: {m}"),
            FleetError::Stalled(m) => write!(f, "fleet stalled: {m}"),
        }
    }
}

impl std::error::Error for FleetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FleetError::Io { source, .. } => Some(source),
            FleetError::Budget(e) => Some(e),
            _ => None,
        }
    }
}

impl From<dcn_guard::BudgetError> for FleetError {
    fn from(e: dcn_guard::BudgetError) -> Self {
        FleetError::Budget(e)
    }
}

/// Builds the `<exe> --worker <root>` invocation under which experiment
/// binaries re-enter themselves as fleet workers. Lives here (not in the
/// caller) because process spawning is confined to this crate — the
/// lint's nondeterminism rule keeps ad-hoc `Command` fan-out out of
/// every other crate, the same way thread spawning is confined to
/// `dcn-exec`.
pub fn worker_command(exe: &Path, root: &Path) -> std::process::Command {
    let mut cmd = std::process::Command::new(exe);
    cmd.arg("--worker").arg(root);
    cmd
}

/// [`worker_command`] against the current executable. Experiment
/// binaries branch on [`worker_root_from_args`] at the top of `main`
/// before any sweep logic, so the child never recurses into supervision.
pub fn self_worker_command(root: &Path) -> Result<std::process::Command, FleetError> {
    let exe = std::env::current_exe().map_err(|source| FleetError::Io {
        path: PathBuf::from("<current_exe>"),
        source,
    })?;
    Ok(worker_command(&exe, root))
}

/// Parses `--worker <root>` out of the process arguments, the flag under
/// which [`self_worker_command`] re-invokes an experiment binary.
pub fn worker_root_from_args() -> Option<PathBuf> {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--worker" {
            return args.next().map(PathBuf::from);
        }
    }
    None
}
