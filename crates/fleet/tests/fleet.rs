//! Integration tests: real multi-process supervision over a toy solve.
//!
//! Worker processes are this same test binary re-invoked with
//! `toy_worker_entry --exact` and the queue root in an environment
//! variable — the gated entry test runs the worker loop in the child and
//! returns immediately (skipping itself) in the normal suite.

use dcn_fleet::{run_fleet, worker_main, FleetConfig, UnitOutcome, WorkUnit};
use dcn_guard::Budget;
use dcn_obs::json::Json;
use std::path::{Path, PathBuf};
use std::process::Command;
use std::time::Duration;

const WORKER_ENV: &str = "DCN_FLEET_TEST_WORKER_ROOT";

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dcn-fleet-test-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The toy work vocabulary the supervision tests drive:
/// `square` computes, `sleep_ms` shuffles completion order,
/// `abort_below` crashes its worker until a given attempt (0 = never),
/// `fail` returns a solve error (a result, not a crash).
fn toy_solve(unit: &WorkUnit, attempt: u64) -> Result<Json, String> {
    let op = unit
        .payload
        .get("op")
        .and_then(Json::as_str)
        .ok_or("missing op")?;
    match op {
        "square" => {
            let x = unit
                .payload
                .get("x")
                .and_then(Json::as_u64)
                .ok_or("missing x")?;
            Ok(Json::obj([("sq", Json::Num((x * x) as f64))]))
        }
        "sleep_ms" => {
            let ms = unit
                .payload
                .get("ms")
                .and_then(Json::as_u64)
                .ok_or("missing ms")?;
            std::thread::sleep(Duration::from_millis(ms));
            Ok(Json::obj([("slept", Json::Num(ms as f64))]))
        }
        "abort_below" => {
            let n = unit
                .payload
                .get("n")
                .and_then(Json::as_u64)
                .ok_or("missing n")?;
            if attempt < n {
                std::process::abort();
            }
            Ok(Json::obj([("survived_at", Json::Num(attempt as f64))]))
        }
        "fail" => Err("deliberate solve error".to_string()),
        other => Err(format!("unknown op {other:?}")),
    }
}

/// Child-process entrypoint (gated on [`WORKER_ENV`]); not a test of its
/// own in the normal suite.
#[test]
fn toy_worker_entry() {
    let Ok(root) = std::env::var(WORKER_ENV) else {
        return;
    };
    worker_main(Path::new(&root), toy_solve).expect("toy worker loop");
}

fn worker_cmd(root: &Path) -> Command {
    let mut c = Command::new(std::env::current_exe().expect("current_exe"));
    c.args(["toy_worker_entry", "--exact", "--nocapture"]);
    c.env(WORKER_ENV, root);
    c
}

fn cfg(root: &Path, workers: usize) -> FleetConfig {
    FleetConfig {
        workers,
        root: root.to_path_buf(),
        lease: Duration::from_secs(60),
        max_retries: 2,
        backoff_base: Duration::from_millis(10),
        poll: Duration::from_millis(10),
        inject_kill_after: None,
    }
}

fn square_units(n: u64) -> Vec<WorkUnit> {
    (0..n)
        .map(|i| WorkUnit {
            id: format!("sq-{i:02}"),
            payload: Json::obj([
                ("op", Json::Str("square".to_string())),
                ("x", Json::Num(i as f64)),
            ]),
        })
        .collect()
}

#[test]
fn completes_and_merges_in_input_order() {
    let root = scratch("complete");
    let units = square_units(8);
    let report = run_fleet(&cfg(&root, 2), &units, &Budget::unlimited(), &|| {
        worker_cmd(&root)
    })
    .expect("fleet run");
    assert_eq!(report.outcomes.len(), 8);
    assert_eq!(report.quarantined, 0);
    for (i, o) in report.outcomes.iter().enumerate() {
        match o {
            UnitOutcome::Ok(json) => {
                assert_eq!(
                    json.get("sq").and_then(Json::as_u64),
                    Some((i * i) as u64),
                    "unit {i}"
                );
            }
            other => panic!("unit {i}: expected Ok, got {other:?}"),
        }
    }
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn merge_is_deterministic_across_worker_counts_with_shuffled_completion() {
    // Induced sleeps shuffle which shard finishes first at every worker
    // count; the merged outcome list must not care.
    let units: Vec<WorkUnit> = (0..12u64)
        .map(|i| {
            if i % 3 == 0 {
                WorkUnit {
                    id: format!("mix-{i:02}"),
                    payload: Json::obj([
                        ("op", Json::Str("sleep_ms".to_string())),
                        ("ms", Json::Num(((i * 37) % 120) as f64)),
                    ]),
                }
            } else {
                WorkUnit {
                    id: format!("mix-{i:02}"),
                    payload: Json::obj([
                        ("op", Json::Str("square".to_string())),
                        ("x", Json::Num(i as f64)),
                    ]),
                }
            }
        })
        .collect();
    let mut merged: Vec<Vec<UnitOutcome>> = Vec::new();
    for workers in [1usize, 2, 4] {
        let root = scratch(&format!("order-{workers}"));
        let report = run_fleet(&cfg(&root, workers), &units, &Budget::unlimited(), &|| {
            worker_cmd(&root)
        })
        .expect("fleet run");
        merged.push(report.outcomes);
        let _ = std::fs::remove_dir_all(&root);
    }
    assert_eq!(merged[0], merged[1], "1 vs 2 workers diverged");
    assert_eq!(merged[0], merged[2], "1 vs 4 workers diverged");
}

#[test]
fn solve_errors_are_results_not_crashes() {
    let root = scratch("solve-err");
    let mut units = square_units(3);
    units.push(WorkUnit {
        id: "poison-free-failure".to_string(),
        payload: Json::obj([("op", Json::Str("fail".to_string()))]),
    });
    let report = run_fleet(&cfg(&root, 2), &units, &Budget::unlimited(), &|| {
        worker_cmd(&root)
    })
    .expect("fleet run");
    assert_eq!(report.crashes, 0, "a solve error must not count as a crash");
    assert_eq!(
        report.outcomes[3],
        UnitOutcome::Err("deliberate solve error".to_string())
    );
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn crashed_worker_unit_is_retried_and_survives() {
    let root = scratch("retry");
    let mut units = square_units(4);
    units.push(WorkUnit {
        id: "crash-once".to_string(),
        payload: Json::obj([
            ("op", Json::Str("abort_below".to_string())),
            ("n", Json::Num(1.0)),
        ]),
    });
    let report = run_fleet(&cfg(&root, 2), &units, &Budget::unlimited(), &|| {
        worker_cmd(&root)
    })
    .expect("fleet run");
    assert!(report.crashes >= 1, "the abort must register as a crash");
    assert!(report.retries >= 1, "the crashed unit must be retried");
    assert_eq!(report.quarantined, 0);
    match &report.outcomes[4] {
        UnitOutcome::Ok(json) => {
            assert_eq!(json.get("survived_at").and_then(Json::as_u64), Some(1));
        }
        other => panic!("expected retried Ok, got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn poison_unit_is_quarantined_and_rest_completes() {
    let root = scratch("poison");
    let mut units = square_units(5);
    units.insert(
        2,
        WorkUnit {
            id: "always-aborts".to_string(),
            payload: Json::obj([
                ("op", Json::Str("abort_below".to_string())),
                ("n", Json::Num(99.0)),
            ]),
        },
    );
    let mut c = cfg(&root, 2);
    c.max_retries = 1;
    let report =
        run_fleet(&c, &units, &Budget::unlimited(), &|| worker_cmd(&root)).expect("fleet run");
    // max_retries = 1 → attempts 0 and 1 both crash → quarantined after
    // killing 2 workers.
    assert!(report.crashes >= 2, "poison must crash max_retries+1 workers");
    assert_eq!(report.quarantined, 1);
    match &report.outcomes[2] {
        UnitOutcome::Quarantined(reason) => {
            assert!(reason.contains("poison"), "reason: {reason}");
        }
        other => panic!("expected quarantine, got {other:?}"),
    }
    // Every other unit still completed.
    for (i, o) in report.outcomes.iter().enumerate() {
        if i != 2 {
            assert!(matches!(o, UnitOutcome::Ok(_)), "unit {i}: {o:?}");
        }
    }
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn restart_recovers_solved_units_without_respawning_work() {
    let root = scratch("recover");
    let units = square_units(6);
    let first = run_fleet(&cfg(&root, 2), &units, &Budget::unlimited(), &|| {
        worker_cmd(&root)
    })
    .expect("first run");
    assert_eq!(first.recovered, 0);
    // Same queue dir, same units: everything is already on disk.
    let second = run_fleet(&cfg(&root, 2), &units, &Budget::unlimited(), &|| {
        worker_cmd(&root)
    })
    .expect("second run");
    assert_eq!(second.recovered, 6);
    assert_eq!(second.crashes, 0);
    assert_eq!(first.outcomes, second.outcomes);
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn duplicate_and_unsafe_ids_are_config_errors() {
    let root = scratch("ids");
    let dup = vec![
        WorkUnit {
            id: "same".to_string(),
            payload: Json::Null,
        },
        WorkUnit {
            id: "same".to_string(),
            payload: Json::Null,
        },
    ];
    let err = run_fleet(&cfg(&root, 1), &dup, &Budget::unlimited(), &|| worker_cmd(&root))
        .expect_err("duplicate ids must be rejected");
    assert!(err.to_string().contains("duplicate"), "{err}");
    let unsafe_id = vec![WorkUnit {
        id: "../escape".to_string(),
        payload: Json::Null,
    }];
    let err = run_fleet(&cfg(&root, 1), &unsafe_id, &Budget::unlimited(), &|| {
        worker_cmd(&root)
    })
    .expect_err("path-mischief ids must be rejected");
    assert!(err.to_string().contains("filename-safe"), "{err}");
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn exhausted_budget_stops_supervision() {
    let root = scratch("budget");
    let units = vec![WorkUnit {
        id: "slow".to_string(),
        payload: Json::obj([
            ("op", Json::Str("sleep_ms".to_string())),
            ("ms", Json::Num(60_000.0)),
        ]),
    }];
    let budget = Budget::unlimited().with_wall(Duration::from_millis(50));
    let err = run_fleet(&cfg(&root, 1), &units, &budget, &|| worker_cmd(&root))
        .expect_err("a spent budget must abort supervision");
    assert!(
        matches!(err, dcn_fleet::FleetError::Budget(_)),
        "expected budget error, got {err}"
    );
    let _ = std::fs::remove_dir_all(&root);
}
