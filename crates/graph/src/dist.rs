//! All-pairs (and set-to-all) distance matrices with compact `u16` entries.

use crate::csr::{Graph, NodeId};
use crate::GraphError;

/// A dense rectangular distance matrix: one row of `n` distances per source.
///
/// For uni-regular topologies the sources are all switches; for bi-regular
/// topologies only switches with attached servers (the set `K` in the paper)
/// need rows, which keeps the matrix at `|K| x n` instead of `n x n`.
#[derive(Debug, Clone)]
pub struct DistMatrix {
    /// Source node of each row, in row order.
    sources: Vec<NodeId>,
    /// Map from node id to row index (`u32::MAX` if the node has no row).
    row_of: Vec<u32>,
    n: usize,
    data: Vec<u16>,
}

impl DistMatrix {
    /// Distances from every node in `sources` to every node of `g`.
    /// Fails with [`GraphError::Disconnected`] if any source cannot reach
    /// some node — topology metrics in this workspace assume connectivity.
    pub fn from_sources(g: &Graph, sources: &[NodeId]) -> Result<Self, GraphError> {
        let _span = dcn_obs::span!(dcn_obs::names::GRAPH_DIST_FROM_SOURCES);
        let n = g.n();
        let mut data = vec![0u16; sources.len() * n];
        let mut queue = Vec::with_capacity(n);
        let mut row_of = vec![u32::MAX; n];
        let bfs_ctr = dcn_obs::counter!(dcn_obs::names::GRAPH_DIST_BFS_RUNS);
        for (i, &s) in sources.iter().enumerate() {
            if s as usize >= n {
                return Err(GraphError::NodeOutOfRange { node: s, n });
            }
            row_of[s as usize] = i as u32;
            let row = &mut data[i * n..(i + 1) * n];
            g.bfs_distances_into(s, row, &mut queue);
            bfs_ctr.inc();
            if row.contains(&u16::MAX) {
                return Err(GraphError::Disconnected);
            }
        }
        // Frontier-size profile (max breadth of each BFS level set) — a
        // proxy for expansion. Derived from the finished rows, and only
        // when observability is on: the scan is O(rows * n).
        if dcn_obs::enabled() && !sources.is_empty() {
            let frontier_hist = dcn_obs::histogram!(dcn_obs::names::GRAPH_DIST_BFS_FRONTIER_PEAK);
            let mut level_count = vec![0u32; n + 1];
            for i in 0..sources.len() {
                let row = &data[i * n..(i + 1) * n];
                for c in level_count.iter_mut() {
                    *c = 0;
                }
                for &d in row {
                    level_count[d as usize] += 1;
                }
                let peak = level_count.iter().copied().max().unwrap_or(0);
                frontier_hist.record_u64(peak as u64);
            }
        }
        Ok(DistMatrix {
            sources: sources.to_vec(),
            row_of,
            n,
            data,
        })
    }

    /// Distances between all pairs of nodes.
    pub fn all_pairs(g: &Graph) -> Result<Self, GraphError> {
        let sources: Vec<NodeId> = (0..g.n() as NodeId).collect();
        Self::from_sources(g, &sources)
    }

    /// Number of rows (sources).
    pub fn rows(&self) -> usize {
        self.sources.len()
    }

    /// Number of columns (all nodes of the underlying graph).
    pub fn cols(&self) -> usize {
        self.n
    }

    /// The source nodes, in row order.
    pub fn sources(&self) -> &[NodeId] {
        &self.sources
    }

    /// Distance from source `u` to node `v`. Panics if `u` has no row.
    #[inline]
    pub fn dist(&self, u: NodeId, v: NodeId) -> u16 {
        let row = self.row_of[u as usize];
        debug_assert_ne!(row, u32::MAX, "node {u} is not a source row");
        self.data[row as usize * self.n + v as usize]
    }

    /// Full row of distances for source `u`.
    #[inline]
    pub fn row(&self, u: NodeId) -> &[u16] {
        let row = self.row_of[u as usize];
        debug_assert_ne!(row, u32::MAX, "node {u} is not a source row");
        &self.data[row as usize * self.n..(row as usize + 1) * self.n]
    }

    /// True if `u` has a row in this matrix.
    #[inline]
    pub fn has_row(&self, u: NodeId) -> bool {
        self.row_of[u as usize] != u32::MAX
    }

    /// Maximum distance present among source-to-source pairs.
    pub fn max_source_to_source(&self) -> u16 {
        let mut best = 0;
        for &u in &self.sources {
            let row = self.row(u);
            for &v in &self.sources {
                let d = row[v as usize];
                if d > best {
                    best = d;
                }
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_pairs_on_cycle() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]).unwrap();
        let d = DistMatrix::all_pairs(&g).unwrap();
        assert_eq!(d.rows(), 5);
        assert_eq!(d.dist(0, 2), 2);
        assert_eq!(d.dist(0, 3), 2);
        assert_eq!(d.dist(1, 4), 2);
        assert_eq!(d.dist(2, 2), 0);
        assert_eq!(d.max_source_to_source(), 2);
    }

    #[test]
    fn subset_sources() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let d = DistMatrix::from_sources(&g, &[0, 3]).unwrap();
        assert_eq!(d.rows(), 2);
        assert!(d.has_row(0));
        assert!(!d.has_row(1));
        assert_eq!(d.dist(0, 3), 3);
        assert_eq!(d.dist(3, 0), 3);
        assert_eq!(d.row(0), &[0, 1, 2, 3]);
    }

    #[test]
    fn disconnected_rejected() {
        let g = Graph::from_edges(3, &[(0, 1)]).unwrap();
        assert_eq!(
            DistMatrix::all_pairs(&g).unwrap_err(),
            GraphError::Disconnected
        );
    }

    #[test]
    fn out_of_range_source() {
        let g = Graph::from_edges(2, &[(0, 1)]).unwrap();
        assert!(matches!(
            DistMatrix::from_sources(&g, &[7]),
            Err(GraphError::NodeOutOfRange { .. })
        ));
    }
}
