//! Dinic's maximum-flow algorithm and the cut metrics built on it.
//!
//! Uses: exact s–t minimum cuts (ground truth for the heuristic
//! partitioner on small graphs), and the fabric's **edge connectivity** —
//! the number of link failures needed to disconnect it, a resilience
//! metric complementary to the paper's throughput-under-failure curves.

use crate::csr::{Graph, NodeId};
use dcn_guard::{Budget, BudgetError};

/// A directed residual-graph arc.
#[derive(Debug, Clone, Copy)]
struct Arc {
    to: u32,
    cap: f64,
    /// Index of the reverse arc.
    rev: u32,
}

/// Dinic max-flow solver over a fixed capacity graph.
pub struct MaxFlow {
    arcs: Vec<Vec<Arc>>,
}

impl MaxFlow {
    /// Builds the residual structure from an undirected graph: each
    /// undirected edge of capacity `c` becomes two directed arcs of
    /// capacity `c` each (full-duplex links, as everywhere in this
    /// workspace).
    pub fn from_graph(g: &Graph) -> Self {
        let mut arcs: Vec<Vec<Arc>> = vec![Vec::new(); g.n()];
        for (e, &(u, v)) in g.edges().iter().enumerate() {
            let c = g.capacity(e as u32);
            let ru = arcs[u as usize].len() as u32;
            let rv = arcs[v as usize].len() as u32;
            arcs[u as usize].push(Arc { to: v, cap: c, rev: rv });
            arcs[v as usize].push(Arc { to: u, cap: c, rev: ru });
        }
        MaxFlow { arcs }
    }

    /// Maximum flow from `s` to `t`. The solver mutates its residual
    /// state; call on a fresh instance per query (see
    /// [`max_flow_value`] for the convenience form).
    ///
    /// Meters one tick per BFS phase. Dinic runs `O(n)` phases on these
    /// graphs, but a deadline or cancellation flag can still cap a
    /// pathological float-capacity instance mid-solve.
    pub fn solve(&mut self, s: NodeId, t: NodeId, budget: &Budget) -> Result<f64, BudgetError> {
        assert_ne!(s, t, "max flow needs distinct endpoints");
        let mut meter = budget.meter();
        let phase_ctr = dcn_obs::counter!(dcn_obs::names::GRAPH_MAXFLOW_PHASES);
        let n = self.arcs.len();
        let mut total = 0.0;
        loop {
            meter.tick()?;
            phase_ctr.inc();
            // BFS level graph.
            let mut level = vec![u32::MAX; n];
            let mut queue = std::collections::VecDeque::new();
            level[s as usize] = 0;
            queue.push_back(s);
            while let Some(u) = queue.pop_front() {
                for a in &self.arcs[u as usize] {
                    if a.cap > 1e-12 && level[a.to as usize] == u32::MAX {
                        level[a.to as usize] = level[u as usize] + 1;
                        queue.push_back(a.to);
                    }
                }
            }
            if level[t as usize] == u32::MAX {
                return Ok(total);
            }
            // DFS blocking flow with iteration pointers.
            let mut it = vec![0usize; n];
            loop {
                let pushed = self.dfs(s, t, f64::INFINITY, &level, &mut it);
                if pushed <= 1e-12 {
                    break;
                }
                total += pushed;
            }
        }
    }

    fn dfs(&mut self, u: NodeId, t: NodeId, limit: f64, level: &[u32], it: &mut [usize]) -> f64 {
        if u == t {
            return limit;
        }
        while it[u as usize] < self.arcs[u as usize].len() {
            let i = it[u as usize];
            let Arc { to, cap, rev } = self.arcs[u as usize][i];
            if cap > 1e-12 && level[to as usize] == level[u as usize] + 1 {
                let pushed = self.dfs(to, t, limit.min(cap), level, it);
                if pushed > 1e-12 {
                    self.arcs[u as usize][i].cap -= pushed;
                    self.arcs[to as usize][rev as usize].cap += pushed;
                    return pushed;
                }
            }
            it[u as usize] += 1;
        }
        0.0
    }

    /// After [`solve`], the source side of a minimum cut: nodes reachable
    /// from `s` in the residual graph.
    // dcn-lint: allow(budget-coverage) — residual-graph BFS visits each node once; bounded by n
    pub fn min_cut_side(&self, s: NodeId) -> Vec<bool> {
        let n = self.arcs.len();
        let mut seen = vec![false; n];
        let mut queue = std::collections::VecDeque::new();
        seen[s as usize] = true;
        queue.push_back(s);
        while let Some(u) = queue.pop_front() {
            for a in &self.arcs[u as usize] {
                if a.cap > 1e-12 && !seen[a.to as usize] {
                    seen[a.to as usize] = true;
                    queue.push_back(a.to);
                }
            }
        }
        seen
    }
}

/// Convenience: the max-flow value from `s` to `t`.
pub fn max_flow_value(g: &Graph, s: NodeId, t: NodeId, budget: &Budget) -> Result<f64, BudgetError> {
    MaxFlow::from_graph(g).solve(s, t, budget)
}

/// Global edge connectivity: the minimum total capacity whose removal
/// disconnects the graph, `min_t maxflow(0, t)` (valid for undirected
/// graphs). Returns 0 for graphs that are already disconnected or have
/// fewer than 2 nodes.
pub fn edge_connectivity(g: &Graph, budget: &Budget) -> Result<f64, BudgetError> {
    if g.n() < 2 || !g.is_connected() {
        return Ok(0.0);
    }
    let mut best = f64::INFINITY;
    for t in 1..g.n() as NodeId {
        let f = max_flow_value(g, 0, t, budget)?;
        best = best.min(f);
        if best <= 0.0 {
            break;
        }
    }
    Ok(best)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unl() -> Budget {
        Budget::unlimited()
    }

    fn mf(g: &Graph, s: NodeId, t: NodeId) -> f64 {
        max_flow_value(g, s, t, &unl()).unwrap()
    }

    #[test]
    fn single_path_flow() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        assert_eq!(mf(&g, 0, 2), 1.0);
    }

    #[test]
    fn parallel_paths_add_up() {
        // Square: two disjoint 2-hop paths from 0 to 2.
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        assert_eq!(mf(&g, 0, 2), 2.0);
    }

    #[test]
    fn capacities_respected() {
        let g = Graph::from_weighted_edges(3, &[(0, 1, 5.0), (1, 2, 2.0)]).unwrap();
        assert_eq!(mf(&g, 0, 2), 2.0);
    }

    #[test]
    fn classic_flow_network() {
        // 0 -> {1,2} -> 3 with a cross edge; max flow = 5 (source and
        // sink capacity are both 5, and the cross edge lets 1 route its
        // surplus through 2).
        let g = Graph::from_weighted_edges(
            4,
            &[(0, 1, 3.0), (0, 2, 2.0), (1, 3, 2.0), (2, 3, 3.0), (1, 2, 1.0)],
        )
        .unwrap();
        assert_eq!(mf(&g, 0, 3), 5.0);
    }

    #[test]
    fn min_cut_side_separates() {
        // Dumbbell: cliques joined by one edge.
        let mut edges = Vec::new();
        for c in 0..2u32 {
            let base = c * 4;
            for i in 0..4 {
                for j in (i + 1)..4 {
                    edges.push((base + i, base + j));
                }
            }
        }
        edges.push((0, 4));
        let g = Graph::from_edges(8, &edges).unwrap();
        let mut mf = MaxFlow::from_graph(&g);
        let flow = mf.solve(1, 6, &unl()).unwrap();
        assert_eq!(flow, 1.0);
        let side = mf.min_cut_side(1);
        assert!(side[0] && side[1] && side[2] && side[3]);
        assert!(!side[4] && !side[5] && !side[6] && !side[7]);
    }

    #[test]
    fn edge_connectivity_values() {
        // Cycle: connectivity 2.
        let ring: Vec<(u32, u32)> = (0..6u32).map(|i| (i, (i + 1) % 6)).collect();
        let g = Graph::from_edges(6, &ring).unwrap();
        assert_eq!(edge_connectivity(&g, &unl()).unwrap(), 2.0);
        // Tree: connectivity 1.
        let tree = Graph::from_edges(4, &[(0, 1), (0, 2), (0, 3)]).unwrap();
        assert_eq!(edge_connectivity(&tree, &unl()).unwrap(), 1.0);
        // Complete graph K5: connectivity 4.
        let mut e = Vec::new();
        for i in 0..5u32 {
            for j in (i + 1)..5 {
                e.push((i, j));
            }
        }
        let k5 = Graph::from_edges(5, &e).unwrap();
        assert_eq!(edge_connectivity(&k5, &unl()).unwrap(), 4.0);
        // Disconnected: 0.
        let split = Graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        assert_eq!(edge_connectivity(&split, &unl()).unwrap(), 0.0);
    }

    #[test]
    fn regular_graph_connectivity_at_most_degree() {
        // Petersen: 3-regular, edge connectivity exactly 3.
        let edges = [
            (0, 1), (1, 2), (2, 3), (3, 4), (4, 0),
            (0, 5), (1, 6), (2, 7), (3, 8), (4, 9),
            (5, 7), (7, 9), (9, 6), (6, 8), (8, 5),
        ];
        let g = Graph::from_edges(10, &edges).unwrap();
        assert_eq!(edge_connectivity(&g, &unl()).unwrap(), 3.0);
    }
}
