#![forbid(unsafe_code)]
//! Graph substrate for the `dcn` workspace.
//!
//! Datacenter topologies at the switch level are sparse undirected
//! multigraphs with link capacities. This crate provides:
//!
//! * [`Graph`] — an immutable CSR (compressed sparse row) representation
//!   built from an edge list, supporting parallel edges and per-edge
//!   capacities.
//! * BFS single-source shortest paths and all-pairs distance matrices
//!   ([`Graph::bfs_distances`], [`Graph::apsp`], [`DistMatrix`]).
//! * Yen's algorithm for loopless K-shortest paths ([`ksp::yen`]) and
//!   enumeration of near-shortest paths ([`ksp::paths_within_slack`]).
//! * Shortest-path counting ([`Graph::count_shortest_paths`]), used by the
//!   paper's Figure 4(b).
//! * The Moore bound ([`moore`]) used by Theorem 4.1 of the paper.
//!
//! Everything here is deterministic and allocation-conscious: distance
//! matrices use `u16` entries so that all-pairs distances for 20K-switch
//! topologies stay within a few hundred MB.

#![warn(missing_docs)]

pub mod csr;
pub mod dist;
pub mod ksp;
pub mod maxflow;
pub mod moore;
pub mod spectral;
pub mod traversal;

pub use csr::{EdgeId, Graph, NodeId};
pub use dist::DistMatrix;
pub use ksp::Path;
pub use maxflow::{edge_connectivity, max_flow_value, MaxFlow};
pub use spectral::{adjacency_lambda2, is_near_ramanujan};

/// Errors produced while constructing or querying graphs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// An edge referenced a node id `>= n`.
    NodeOutOfRange {
        /// The offending node id.
        node: NodeId,
        /// Number of nodes in the graph.
        n: usize,
    },
    /// A self-loop was supplied where they are not permitted.
    SelfLoop {
        /// The node with the self-loop.
        node: NodeId,
    },
    /// The graph is not connected where connectivity is required.
    Disconnected,
    /// A distance overflowed the `u16` distance representation.
    DistanceOverflow,
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, n } => {
                write!(f, "node {node} out of range for graph with {n} nodes")
            }
            GraphError::SelfLoop { node } => write!(f, "self-loop at node {node}"),
            GraphError::Disconnected => write!(f, "graph is not connected"),
            GraphError::DistanceOverflow => write!(f, "distance exceeds u16 range"),
        }
    }
}

impl std::error::Error for GraphError {}
