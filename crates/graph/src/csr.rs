//! Immutable CSR graph built from an undirected edge list.
//!
//! The representation supports parallel edges (multigraphs): each undirected
//! edge gets a stable [`EdgeId`], and the adjacency of a node stores
//! `(neighbor, edge_id)` pairs. Capacities are stored per edge and apply
//! *per direction* — an undirected link of capacity `c` can carry `c` units
//! of flow in each direction simultaneously, matching the link model used
//! throughout the paper (unit-capacity full-duplex links).

use crate::GraphError;

/// Node identifier: dense `0..n`.
pub type NodeId = u32;
/// Edge identifier: dense `0..m`, one per *undirected* edge.
pub type EdgeId = u32;

/// An immutable undirected multigraph in CSR form.
#[derive(Debug, Clone)]
pub struct Graph {
    n: usize,
    /// CSR row offsets, length `n + 1`.
    offsets: Vec<u32>,
    /// Flattened adjacency: neighbor node ids.
    adj_node: Vec<NodeId>,
    /// Flattened adjacency: undirected edge ids (parallel to `adj_node`).
    adj_edge: Vec<EdgeId>,
    /// Endpoints of each undirected edge.
    edges: Vec<(NodeId, NodeId)>,
    /// Per-direction capacity of each undirected edge.
    caps: Vec<f64>,
}

impl Graph {
    /// Builds a graph with `n` nodes from an undirected edge list with unit
    /// capacities. Parallel edges are allowed; self-loops are rejected.
    pub fn from_edges(n: usize, edges: &[(NodeId, NodeId)]) -> Result<Self, GraphError> {
        let weighted: Vec<(NodeId, NodeId, f64)> =
            edges.iter().map(|&(u, v)| (u, v, 1.0)).collect();
        Self::from_weighted_edges(n, &weighted)
    }

    /// Builds a graph with `n` nodes from an undirected edge list with
    /// per-direction capacities.
    pub fn from_weighted_edges(
        n: usize,
        edges: &[(NodeId, NodeId, f64)],
    ) -> Result<Self, GraphError> {
        for &(u, v, _) in edges {
            if u as usize >= n {
                return Err(GraphError::NodeOutOfRange { node: u, n });
            }
            if v as usize >= n {
                return Err(GraphError::NodeOutOfRange { node: v, n });
            }
            if u == v {
                return Err(GraphError::SelfLoop { node: u });
            }
        }
        let mut deg = vec![0u32; n];
        for &(u, v, _) in edges {
            deg[u as usize] += 1;
            deg[v as usize] += 1;
        }
        let mut offsets = vec![0u32; n + 1];
        for i in 0..n {
            offsets[i + 1] = offsets[i] + deg[i];
        }
        let total = offsets[n] as usize;
        let mut adj_node = vec![0 as NodeId; total];
        let mut adj_edge = vec![0 as EdgeId; total];
        let mut cursor: Vec<u32> = offsets[..n].to_vec();
        let mut edge_list = Vec::with_capacity(edges.len());
        let mut caps = Vec::with_capacity(edges.len());
        for (eid, &(u, v, c)) in edges.iter().enumerate() {
            let eid = eid as EdgeId;
            let cu = cursor[u as usize] as usize;
            adj_node[cu] = v;
            adj_edge[cu] = eid;
            cursor[u as usize] += 1;
            let cv = cursor[v as usize] as usize;
            adj_node[cv] = u;
            adj_edge[cv] = eid;
            cursor[v as usize] += 1;
            edge_list.push((u, v));
            caps.push(c);
        }
        Ok(Graph {
            n,
            offsets,
            adj_node,
            adj_edge,
            edges: edge_list,
            caps,
        })
    }

    /// Number of nodes.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of undirected edges (parallel edges counted separately).
    #[inline]
    pub fn m(&self) -> usize {
        self.edges.len()
    }

    /// Total per-direction capacity summed over all undirected edges.
    /// For unit capacities this equals `m()`; the quantity `2 * total_capacity`
    /// is the `2E` numerator in Equation 1 of the paper.
    pub fn total_capacity(&self) -> f64 {
        self.caps.iter().sum()
    }

    /// Degree of `u` (counting parallel edges).
    #[inline]
    pub fn degree(&self, u: NodeId) -> usize {
        (self.offsets[u as usize + 1] - self.offsets[u as usize]) as usize
    }

    /// Iterates over `(neighbor, edge_id)` pairs of `u`.
    #[inline]
    pub fn neighbors(&self, u: NodeId) -> impl Iterator<Item = (NodeId, EdgeId)> + '_ {
        let lo = self.offsets[u as usize] as usize;
        let hi = self.offsets[u as usize + 1] as usize;
        self.adj_node[lo..hi]
            .iter()
            .copied()
            .zip(self.adj_edge[lo..hi].iter().copied())
    }

    /// Endpoints of undirected edge `e`.
    #[inline]
    pub fn edge(&self, e: EdgeId) -> (NodeId, NodeId) {
        self.edges[e as usize]
    }

    /// All undirected edges as `(u, v)` pairs in insertion order.
    #[inline]
    pub fn edges(&self) -> &[(NodeId, NodeId)] {
        &self.edges
    }

    /// Per-direction capacity of edge `e`.
    #[inline]
    pub fn capacity(&self, e: EdgeId) -> f64 {
        self.caps[e as usize]
    }

    /// Returns a copy of this graph with the given undirected edges removed.
    /// Edge ids are renumbered densely; used for failure injection.
    pub fn without_edges(&self, removed: &[EdgeId]) -> Graph {
        let mut keep = vec![true; self.m()];
        for &e in removed {
            keep[e as usize] = false;
        }
        let remaining: Vec<(NodeId, NodeId, f64)> = self
            .edges
            .iter()
            .zip(self.caps.iter())
            .enumerate()
            .filter(|(i, _)| keep[*i])
            .map(|(_, (&(u, v), &c))| (u, v, c))
            .collect();
        Graph::from_weighted_edges(self.n, &remaining)
            // dcn-lint: allow(panic-freedom) — edges of an already-validated graph stay in range after filtering
            .expect("subgraph of a valid graph is valid")
    }

    /// True if every node is reachable from node 0 (or the graph is empty).
    pub fn is_connected(&self) -> bool {
        if self.n == 0 {
            return true;
        }
        let dist = self.bfs_distances(0);
        dist.iter().all(|&d| d != u16::MAX)
    }

    /// Merges parallel edges into single edges whose capacity is the sum of
    /// the parallel capacities. Useful before path enumeration, where parallel
    /// edges only multiply identical paths.
    pub fn coalesced(&self) -> Graph {
        use std::collections::HashMap;
        let mut acc: HashMap<(NodeId, NodeId), f64> = HashMap::new();
        for (e, &(u, v)) in self.edges.iter().enumerate() {
            let key = if u < v { (u, v) } else { (v, u) };
            *acc.entry(key).or_insert(0.0) += self.caps[e];
        }
        let mut merged: Vec<(NodeId, NodeId, f64)> =
            acc.into_iter().map(|((u, v), c)| (u, v, c)).collect();
        merged.sort_by_key(|&(u, v, _)| (u, v));
        // dcn-lint: allow(panic-freedom) — merging parallel edges of a validated graph cannot produce out-of-range endpoints
        Graph::from_weighted_edges(self.n, &merged).expect("merged edges are valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Graph {
        Graph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]).unwrap()
    }

    #[test]
    fn builds_triangle() {
        let g = triangle();
        assert_eq!(g.n(), 3);
        assert_eq!(g.m(), 3);
        assert_eq!(g.degree(0), 2);
        let mut nbrs: Vec<NodeId> = g.neighbors(0).map(|(v, _)| v).collect();
        nbrs.sort();
        assert_eq!(nbrs, vec![1, 2]);
    }

    #[test]
    fn rejects_out_of_range() {
        let err = Graph::from_edges(2, &[(0, 5)]).unwrap_err();
        assert_eq!(err, GraphError::NodeOutOfRange { node: 5, n: 2 });
    }

    #[test]
    fn rejects_self_loop() {
        let err = Graph::from_edges(2, &[(1, 1)]).unwrap_err();
        assert_eq!(err, GraphError::SelfLoop { node: 1 });
    }

    #[test]
    fn parallel_edges_counted() {
        let g = Graph::from_edges(2, &[(0, 1), (0, 1)]).unwrap();
        assert_eq!(g.m(), 2);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.total_capacity(), 2.0);
    }

    #[test]
    fn coalesce_merges_parallel() {
        let g = Graph::from_edges(2, &[(0, 1), (0, 1), (1, 0)]).unwrap();
        let c = g.coalesced();
        assert_eq!(c.m(), 1);
        assert_eq!(c.capacity(0), 3.0);
        assert_eq!(c.total_capacity(), 3.0);
    }

    #[test]
    fn without_edges_removes() {
        let g = triangle();
        let h = g.without_edges(&[0]);
        assert_eq!(h.m(), 2);
        assert!(h.is_connected());
        let i = g.without_edges(&[0, 1]);
        assert_eq!(i.m(), 1);
        assert!(!i.is_connected());
    }

    #[test]
    fn connected_checks() {
        assert!(triangle().is_connected());
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        assert!(!g.is_connected());
        let empty = Graph::from_edges(0, &[]).unwrap();
        assert!(empty.is_connected());
    }

    #[test]
    fn edge_endpoints() {
        let g = triangle();
        assert_eq!(g.edge(1), (1, 2));
        assert_eq!(g.edges().len(), 3);
    }
}
