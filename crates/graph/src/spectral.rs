//! Spectral diagnostics for expander quality.
//!
//! Jellyfish and Xpander derive their capacity claims from being good
//! expanders; the second adjacency eigenvalue `λ2` certifies that. For an
//! `r`-regular graph, `λ2 <= 2 sqrt(r-1)` is the Ramanujan (optimal
//! expansion) threshold, and random regular graphs sit just above it with
//! high probability (Friedman's theorem). [`adjacency_lambda2`] computes
//! `λ2` by power iteration with deflation of the all-ones Perron vector.

use crate::csr::Graph;

/// Largest-magnitude eigenvalue of the adjacency matrix restricted to the
/// space orthogonal to the all-ones vector, for a *regular* graph.
/// Returns `None` if the graph is not regular (the all-ones deflation is
/// only exact for regular graphs) or has fewer than 2 nodes.
///
/// `iters` power iterations; 200–500 gives 2–3 digits on the topologies
/// in this workspace. The returned value approximates `max(|λ2|, |λn|)`,
/// which is the quantity expansion bounds use.
pub fn adjacency_lambda2(g: &Graph, iters: usize) -> Option<f64> {
    let n = g.n();
    if n < 2 {
        return None;
    }
    let r = g.degree(0);
    if (1..n).any(|u| g.degree(u as u32) != r) {
        return None;
    }
    // Deterministic pseudo-random start, deflated and normalized.
    let mut x: Vec<f64> = (0..n)
        .map(|i| ((i.wrapping_mul(2654435761)) % 1009) as f64 / 1009.0 - 0.5)
        .collect();
    deflate(&mut x);
    normalize(&mut x)?;
    let mut y = vec![0.0f64; n];
    let mut lambda = 0.0;
    for _ in 0..iters {
        y.iter_mut().for_each(|v| *v = 0.0);
        for u in 0..n as u32 {
            for (v, _) in g.neighbors(u) {
                y[u as usize] += x[v as usize];
            }
        }
        deflate(&mut y);
        lambda = dot(&x, &y).abs();
        std::mem::swap(&mut x, &mut y);
        normalize(&mut x)?;
    }
    Some(lambda)
}

/// Whether an `r`-regular graph is within `slack` of the Ramanujan bound
/// `2 sqrt(r - 1)` — i.e. a near-optimal expander.
pub fn is_near_ramanujan(g: &Graph, iters: usize, slack: f64) -> Option<bool> {
    let r = g.degree(0) as f64;
    let l2 = adjacency_lambda2(g, iters)?;
    Some(l2 <= 2.0 * (r - 1.0).sqrt() + slack)
}

fn deflate(x: &mut [f64]) {
    let mean = x.iter().sum::<f64>() / x.len() as f64;
    x.iter_mut().for_each(|v| *v -= mean);
}

fn normalize(x: &mut [f64]) -> Option<()> {
    let norm = x.iter().map(|v| v * v).sum::<f64>().sqrt();
    if norm <= 1e-300 {
        return None;
    }
    x.iter_mut().for_each(|v| *v /= norm);
    Some(())
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Complete graph K_n: eigenvalues n-1 (once) and -1 (n-1 times), so
    /// the deflated spectral radius is exactly 1.
    #[test]
    fn complete_graph_lambda2_is_one() {
        let mut edges = Vec::new();
        for i in 0..8u32 {
            for j in (i + 1)..8 {
                edges.push((i, j));
            }
        }
        let g = Graph::from_edges(8, &edges).unwrap();
        let l2 = adjacency_lambda2(&g, 300).unwrap();
        assert!((l2 - 1.0).abs() < 1e-6, "λ2 = {l2}");
    }

    /// Cycle C_n has eigenvalues 2 cos(2πk/n); the deflated spectral
    /// radius is the largest |·| among k != 0. For odd n that is
    /// 2 cos(π/n) (from the most negative eigenvalue); even cycles are
    /// bipartite and give exactly 2.
    #[test]
    fn cycle_lambda2_matches_closed_form() {
        for n in [12usize, 13] {
            let edges: Vec<(u32, u32)> =
                (0..n as u32).map(|i| (i, (i + 1) % n as u32)).collect();
            let g = Graph::from_edges(n, &edges).unwrap();
            let expect = (1..n)
                .map(|k| (2.0 * (2.0 * std::f64::consts::PI * k as f64 / n as f64).cos()).abs())
                .fold(0.0f64, f64::max);
            let l2 = adjacency_lambda2(&g, 4000).unwrap();
            assert!((l2 - expect).abs() < 1e-3, "C{n}: λ = {l2}, expect {expect}");
        }
    }

    #[test]
    fn petersen_is_ramanujan() {
        // Petersen graph: 3-regular with λ2 = 1 < 2 sqrt 2.
        let edges = [
            (0, 1), (1, 2), (2, 3), (3, 4), (4, 0),
            (0, 5), (1, 6), (2, 7), (3, 8), (4, 9),
            (5, 7), (7, 9), (9, 6), (6, 8), (8, 5),
        ];
        let g = Graph::from_edges(10, &edges).unwrap();
        let l2 = adjacency_lambda2(&g, 500).unwrap();
        assert!((l2 - 2.0).abs() < 1e-6, "Petersen deflated radius = {l2} (λn = -2)");
        assert!(is_near_ramanujan(&g, 500, 1e-6).unwrap());
    }

    #[test]
    fn irregular_rejected() {
        let g = Graph::from_edges(3, &[(0, 1)]).unwrap();
        assert!(adjacency_lambda2(&g, 100).is_none());
        let one = Graph::from_edges(1, &[]).unwrap();
        assert!(adjacency_lambda2(&one, 100).is_none());
    }

    #[test]
    fn poor_expander_detected() {
        // Two K4s joined by a single edge is 3-4-regular — not regular, so
        // use a barbell of cycles: C16 is a terrible expander: λ2 close
        // to 2 = r, far above... the Ramanujan bound for r=2 is
        // 2 sqrt(1) = 2, so the test uses the raw gap instead.
        let n = 32;
        let edges: Vec<(u32, u32)> = (0..n as u32).map(|i| (i, (i + 1) % n as u32)).collect();
        let g = Graph::from_edges(n, &edges).unwrap();
        let l2 = adjacency_lambda2(&g, 3000).unwrap();
        // Spectral gap r - λ2 is tiny for long cycles.
        assert!(2.0 - l2 < 0.1, "cycle gap should be tiny, λ2 = {l2}");
    }
}
