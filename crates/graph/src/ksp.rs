//! K-shortest loopless paths.
//!
//! Two interchangeable engines are provided:
//!
//! * [`yen`] — the classic Yen's algorithm (Yen 1971), as used by the paper
//!   via networkx. Exact, simple, and the reference for tests.
//! * [`k_shortest_by_slack`] — a much faster enumerator that produces the
//!   same path sets by generating, for increasing slack `m = 0, 1, 2, ...`,
//!   all loopless paths of length exactly `sp + m`, pruned by
//!   distance-to-destination. This is the engine the MCF crate uses.
//!
//! Both operate on hop counts (unit edge weights), which is the metric the
//! paper uses throughout, and both return paths as node sequences. Parallel
//! edges do not produce duplicate paths; callers that care about parallel
//! capacity should run on [`Graph::coalesced`] graphs.

use crate::csr::{Graph, NodeId};
use dcn_guard::{Budget, BudgetError, BudgetMeter};
use std::collections::{BinaryHeap, HashSet};

/// How many DFS node expansions share one deadline/cancellation check in
/// the slack enumerator. Expansions are a few array reads each, so a clock
/// read per tick would dominate; the iteration cap stays exact regardless.
const DFS_METER_STRIDE: u32 = 1024;

/// A loopless path, stored as the sequence of visited nodes
/// (`path[0] = src`, `path.last() = dst`).
pub type Path = Vec<NodeId>;

/// Hop length of a path (number of edges).
#[inline]
pub fn path_len(p: &Path) -> usize {
    p.len().saturating_sub(1)
}

/// BFS shortest path from `src` to `dst` avoiding banned nodes and banned
/// (unordered) node-pair edges. Returns `None` if no path exists.
fn restricted_shortest_path(
    g: &Graph,
    src: NodeId,
    dst: NodeId,
    banned_nodes: &[bool],
    banned_links: &HashSet<(NodeId, NodeId)>,
) -> Option<Path> {
    if banned_nodes[src as usize] || banned_nodes[dst as usize] {
        return None;
    }
    let n = g.n();
    let mut parent = vec![u32::MAX; n];
    let mut seen = vec![false; n];
    let mut queue = std::collections::VecDeque::new();
    seen[src as usize] = true;
    queue.push_back(src);
    while let Some(u) = queue.pop_front() {
        if u == dst {
            break;
        }
        for (v, _) in g.neighbors(u) {
            if seen[v as usize] || banned_nodes[v as usize] {
                continue;
            }
            let key = if u < v { (u, v) } else { (v, u) };
            if banned_links.contains(&key) {
                continue;
            }
            seen[v as usize] = true;
            parent[v as usize] = u;
            queue.push_back(v);
        }
    }
    if !seen[dst as usize] {
        return None;
    }
    let mut path = vec![dst];
    let mut cur = dst;
    while cur != src {
        cur = parent[cur as usize];
        path.push(cur);
    }
    path.reverse();
    Some(path)
}

/// Candidate entry for Yen's heap, ordered by (length, path) for determinism.
#[derive(PartialEq, Eq)]
struct Candidate(Path);

impl Ord for Candidate {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reverse ordering: BinaryHeap is a max-heap, we want the shortest
        // (then lexicographically smallest) path on top.
        other
            .0
            .len()
            .cmp(&self.0.len())
            .then_with(|| other.0.cmp(&self.0))
    }
}

impl PartialOrd for Candidate {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Yen's algorithm: up to `k` shortest loopless paths from `src` to `dst`,
/// in non-decreasing length order. Returns fewer than `k` paths when the
/// graph does not contain that many simple paths.
///
/// Meters one tick per spur search (a restricted BFS), so a deadline or
/// iteration cap aborts the quadratic candidate generation with a typed
/// error instead of stalling on dense graphs with large `k`. Callers
/// without a deadline pass `&Budget::unlimited()` (or
/// `dcn_guard::prelude::unlimited()`).
pub fn yen(
    g: &Graph,
    src: NodeId,
    dst: NodeId,
    k: usize,
    budget: &Budget,
) -> Result<Vec<Path>, BudgetError> {
    let mut meter = budget.meter();
    if k == 0 || src == dst {
        return Ok(Vec::new());
    }
    let mut banned_nodes = vec![false; g.n()];
    let banned_links = HashSet::new();
    let first = match restricted_shortest_path(g, src, dst, &banned_nodes, &banned_links) {
        Some(p) => p,
        None => return Ok(Vec::new()),
    };
    let mut paths: Vec<Path> = vec![first];
    let mut candidates: BinaryHeap<Candidate> = BinaryHeap::new();
    let mut seen_candidates: HashSet<Path> = HashSet::new();
    let spur_ctr = dcn_obs::counter!(dcn_obs::names::GRAPH_KSP_SPUR_SEARCHES);
    let cand_ctr = dcn_obs::counter!(dcn_obs::names::GRAPH_KSP_CANDIDATES);

    while paths.len() < k {
        let Some(prev) = paths.last().cloned() else {
            break;
        };
        // Each node of the previous path except the last is a spur node.
        for i in 0..prev.len() - 1 {
            meter.tick()?;
            spur_ctr.inc();
            let spur = prev[i];
            let root = &prev[..=i];
            let mut banned_links = HashSet::new();
            // Ban edges used by earlier accepted paths sharing this root.
            for p in &paths {
                if p.len() > i + 1 && p[..=i] == *root {
                    let (a, b) = (p[i], p[i + 1]);
                    banned_links.insert(if a < b { (a, b) } else { (b, a) });
                }
            }
            // Ban root nodes (except the spur) to keep paths loopless.
            for &u in &root[..i] {
                banned_nodes[u as usize] = true;
            }
            if let Some(spur_path) =
                restricted_shortest_path(g, spur, dst, &banned_nodes, &banned_links)
            {
                let mut total = root[..i].to_vec();
                total.extend_from_slice(&spur_path);
                if seen_candidates.insert(total.clone()) {
                    cand_ctr.inc();
                    candidates.push(Candidate(total));
                }
            }
            for &u in &root[..i] {
                banned_nodes[u as usize] = false;
            }
        }
        match candidates.pop() {
            Some(Candidate(p)) => paths.push(p),
            None => break,
        }
    }
    Ok(paths)
}

/// All loopless paths from `src` to `dst` whose length is at most
/// `shortest + slack`, capped at `cap` paths. Paths are produced grouped by
/// length (all length-`sp` paths first, then `sp+1`, ...). The DFS prunes a
/// partial path as soon as its length plus the remaining BFS distance
/// exceeds the current budget, which keeps enumeration output-sensitive.
///
/// Meters one tick per DFS node expansion (deadline/cancellation checked
/// every [`DFS_METER_STRIDE`] ticks).
pub fn paths_within_slack(
    g: &Graph,
    src: NodeId,
    dst: NodeId,
    slack: u16,
    cap: usize,
    budget: &Budget,
) -> Result<Vec<Path>, BudgetError> {
    k_shortest_impl(g, src, dst, cap, slack, false, budget)
}

/// Up to `k` shortest loopless paths, produced by increasing slack levels.
/// Produces the same multiset of path lengths as [`yen`] (tie order may
/// differ). `max_slack` bounds how far beyond the shortest length the
/// search is willing to go; `u16::MAX` means unbounded (the search still
/// terminates because simple paths have length `< n`).
///
/// Meters one tick per DFS node expansion (deadline/cancellation checked
/// every [`DFS_METER_STRIDE`] ticks).
pub fn k_shortest_by_slack(
    g: &Graph,
    src: NodeId,
    dst: NodeId,
    k: usize,
    max_slack: u16,
    budget: &Budget,
) -> Result<Vec<Path>, BudgetError> {
    k_shortest_impl(g, src, dst, k, max_slack, true, budget)
}

fn k_shortest_impl(
    g: &Graph,
    src: NodeId,
    dst: NodeId,
    cap: usize,
    max_slack: u16,
    stop_at_cap_per_level: bool,
    exec_budget: &Budget,
) -> Result<Vec<Path>, BudgetError> {
    let mut meter = exec_budget.meter_every(DFS_METER_STRIDE);
    if cap == 0 || src == dst {
        return Ok(Vec::new());
    }
    let dist_to_dst = g.bfs_distances(dst);
    let sp = dist_to_dst[src as usize];
    if sp == u16::MAX {
        return Ok(Vec::new());
    }
    let mut out: Vec<Path> = Vec::new();
    let max_possible = (g.n() as u32 - 1).min(sp as u32 + max_slack as u32) as u16;
    let mut budget = sp;
    while budget <= max_possible && out.len() < cap {
        // Enumerate paths of length exactly `budget`.
        dfs_exact(
            g,
            src,
            dst,
            budget,
            &dist_to_dst,
            cap,
            &mut out,
            stop_at_cap_per_level,
            &mut meter,
        )?;
        if budget == u16::MAX {
            break;
        }
        budget += 1;
    }
    out.truncate(cap);
    Ok(out)
}

/// Iterative DFS collecting all simple paths of length exactly `budget`.
#[allow(clippy::too_many_arguments)]
fn dfs_exact(
    g: &Graph,
    src: NodeId,
    dst: NodeId,
    budget: u16,
    dist_to_dst: &[u16],
    cap: usize,
    out: &mut Vec<Path>,
    stop_at_cap: bool,
    meter: &mut BudgetMeter<'_>,
) -> Result<(), BudgetError> {
    let mut on_path = vec![false; g.n()];
    let mut path: Vec<NodeId> = vec![src];
    on_path[src as usize] = true;
    // Stack of neighbor cursors per depth.
    let mut iters: Vec<Box<dyn Iterator<Item = NodeId>>> = Vec::new();
    let collect_nbrs = |u: NodeId| -> Box<dyn Iterator<Item = NodeId>> {
        let mut v: Vec<NodeId> = g.neighbors(u).map(|(w, _)| w).collect();
        v.sort_unstable();
        v.dedup();
        Box::new(v.into_iter())
    };
    iters.push(collect_nbrs(src));
    let expand_ctr = dcn_obs::counter!(dcn_obs::names::GRAPH_KSP_SLACK_DFS_EXPANSIONS);
    while let Some(it) = iters.last_mut() {
        meter.tick()?;
        expand_ctr.inc();
        if stop_at_cap && out.len() >= cap {
            return Ok(());
        }
        let depth = path.len() as u16 - 1; // edges so far
        match it.next() {
            Some(w) => {
                if on_path[w as usize] {
                    continue;
                }
                let new_len = depth + 1;
                if w == dst {
                    if new_len == budget {
                        let mut p = path.clone();
                        p.push(dst);
                        out.push(p);
                    }
                    continue;
                }
                // Prune: must still be able to reach dst in exactly
                // budget - new_len more hops; BFS distance is a lower bound.
                if new_len >= budget || dist_to_dst[w as usize] > budget - new_len {
                    continue;
                }
                on_path[w as usize] = true;
                path.push(w);
                iters.push(collect_nbrs(w));
            }
            None => {
                iters.pop();
                if let Some(u) = path.pop() {
                    on_path[u as usize] = false;
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unl() -> Budget {
        Budget::unlimited()
    }

    /// Diamond: 0-1-3 and 0-2-3, plus long way 0-4-5-3.
    fn diamond() -> Graph {
        Graph::from_edges(6, &[(0, 1), (1, 3), (0, 2), (2, 3), (0, 4), (4, 5), (5, 3)]).unwrap()
    }

    #[test]
    fn yen_finds_all_paths_in_order() {
        let g = diamond();
        let paths = yen(&g, 0, 3, 10, &unl()).unwrap();
        assert_eq!(paths.len(), 3);
        assert_eq!(path_len(&paths[0]), 2);
        assert_eq!(path_len(&paths[1]), 2);
        assert_eq!(path_len(&paths[2]), 3);
    }

    #[test]
    fn yen_respects_k() {
        let g = diamond();
        assert_eq!(yen(&g, 0, 3, 1, &unl()).unwrap().len(), 1);
        assert_eq!(yen(&g, 0, 3, 2, &unl()).unwrap().len(), 2);
    }

    #[test]
    fn yen_no_path() {
        let g = Graph::from_edges(3, &[(0, 1)]).unwrap();
        assert!(yen(&g, 0, 2, 5, &unl()).unwrap().is_empty());
    }

    #[test]
    fn slack_matches_yen_lengths() {
        let g = diamond();
        let a = yen(&g, 0, 3, 10, &unl()).unwrap();
        let b = k_shortest_by_slack(&g, 0, 3, 10, u16::MAX, &unl()).unwrap();
        let la: Vec<usize> = a.iter().map(path_len).collect();
        let lb: Vec<usize> = b.iter().map(path_len).collect();
        assert_eq!(la, lb);
    }

    #[test]
    fn slack_zero_gives_only_shortest() {
        let g = diamond();
        let p = paths_within_slack(&g, 0, 3, 0, 100, &unl()).unwrap();
        assert_eq!(p.len(), 2);
        assert!(p.iter().all(|p| path_len(p) == 2));
    }

    #[test]
    fn slack_one_includes_longer() {
        let g = diamond();
        let p = paths_within_slack(&g, 0, 3, 1, 100, &unl()).unwrap();
        assert_eq!(p.len(), 3);
    }

    #[test]
    fn paths_are_loopless_and_valid() {
        let g = diamond();
        for p in k_shortest_by_slack(&g, 0, 3, 10, u16::MAX, &unl()).unwrap() {
            assert_eq!(p[0], 0);
            assert_eq!(*p.last().unwrap(), 3);
            let mut uniq = p.clone();
            uniq.sort();
            uniq.dedup();
            assert_eq!(uniq.len(), p.len(), "path revisits a node: {p:?}");
            for w in p.windows(2) {
                assert!(
                    g.neighbors(w[0]).any(|(v, _)| v == w[1]),
                    "non-adjacent hop {w:?}"
                );
            }
        }
    }

    #[test]
    fn cap_respected() {
        let g = diamond();
        assert_eq!(paths_within_slack(&g, 0, 3, 5, 2, &unl()).unwrap().len(), 2);
        assert_eq!(
            k_shortest_by_slack(&g, 0, 3, 2, u16::MAX, &unl()).unwrap().len(),
            2
        );
    }

    #[test]
    fn parallel_edges_do_not_duplicate_paths() {
        let g = Graph::from_edges(3, &[(0, 1), (0, 1), (1, 2)]).unwrap();
        let p = k_shortest_by_slack(&g, 0, 2, 10, u16::MAX, &unl()).unwrap();
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn budget_caps_yen_and_slack_search() {
        let g = diamond();
        let tiny = Budget::unlimited().with_iter_cap(1);
        // Yen needs several spur searches for k=10 → the cap fires.
        assert!(matches!(
            yen(&g, 0, 3, 10, &tiny),
            Err(BudgetError::IterationsExceeded { cap: 1 })
        ));
        assert!(matches!(
            k_shortest_by_slack(&g, 0, 3, 10, u16::MAX, &tiny),
            Err(BudgetError::IterationsExceeded { cap: 1 })
        ));
        assert!(matches!(
            paths_within_slack(&g, 0, 3, 5, 100, &tiny),
            Err(BudgetError::IterationsExceeded { cap: 1 })
        ));
        // A roomy budget returns the same paths as an unlimited one.
        let roomy = Budget::unlimited().with_iter_cap(1_000_000);
        assert_eq!(
            yen(&g, 0, 3, 10, &roomy).unwrap(),
            yen(&g, 0, 3, 10, &unl()).unwrap()
        );
        assert_eq!(
            k_shortest_by_slack(&g, 0, 3, 10, u16::MAX, &roomy).unwrap(),
            k_shortest_by_slack(&g, 0, 3, 10, u16::MAX, &unl()).unwrap()
        );
    }

    #[test]
    fn expired_deadline_aborts_dfs_despite_stride() {
        // A zero deadline fires at the first strided checkpoint; the DFS
        // stride is 1024 so give it a graph needing more expansions.
        let g = diamond();
        let expired = Budget::unlimited().with_wall(std::time::Duration::ZERO);
        // Yen meters every tick, so it errs immediately.
        assert!(matches!(
            yen(&g, 0, 3, 10, &expired),
            Err(BudgetError::DeadlineExceeded { .. })
        ));
        // The slack DFS on this small graph finishes under one stride —
        // both outcomes (done or deadline) are acceptable; no hang either way.
        let r = k_shortest_by_slack(&g, 0, 3, 10, u16::MAX, &expired);
        match r {
            Ok(paths) => assert_eq!(paths.len(), 3),
            Err(e) => assert!(matches!(e, BudgetError::DeadlineExceeded { .. })),
        }
    }

    #[test]
    fn yen_on_larger_random_like_graph_agrees_with_slack() {
        // Petersen graph: 3-regular, girth 5 — a good stress case.
        let edges = [
            (0, 1),
            (1, 2),
            (2, 3),
            (3, 4),
            (4, 0),
            (0, 5),
            (1, 6),
            (2, 7),
            (3, 8),
            (4, 9),
            (5, 7),
            (7, 9),
            (9, 6),
            (6, 8),
            (8, 5),
        ];
        let g = Graph::from_edges(10, &edges).unwrap();
        for dst in 1..10u32 {
            let a = yen(&g, 0, dst, 25, &unl()).unwrap();
            let b = k_shortest_by_slack(&g, 0, dst, 25, u16::MAX, &unl()).unwrap();
            let la: Vec<usize> = a.iter().map(path_len).collect();
            let lb: Vec<usize> = b.iter().map(path_len).collect();
            assert_eq!(la, lb, "length multiset mismatch for dst={dst}");
        }
    }
}
