//! The Moore bound and the distance-tail bounds built on it.
//!
//! Theorem 4.1 of the paper bounds the throughput of *any* uni-regular
//! topology using the minimum diameter `d` that a graph of given degree
//! needs in order to hold `N/H` switches (the degree/diameter Moore bound),
//! plus Lemma 8.1's lower bound `W_m` on the number of switches at distance
//! at least `m` from any given switch.

/// Maximum number of nodes a graph with (network) degree `r` and diameter
/// `k` can contain: `1 + r * sum_{i=0}^{k-1} (r-1)^i`.
///
/// Returned as `f64` because the value overflows integers quickly; the
/// consumers only compare it against node counts.
pub fn moore_nodes(r: u32, k: u32) -> f64 {
    if k == 0 {
        return 1.0;
    }
    match r {
        0 => 1.0,
        1 => 2.0,
        2 => 1.0 + 2.0 * k as f64,
        _ => {
            let r = r as f64;
            // 1 + r * ((r-1)^k - 1) / (r - 2)
            1.0 + r * ((r - 1.0).powi(k as i32) - 1.0) / (r - 2.0)
        }
    }
}

/// Minimum diameter needed for `n` nodes of degree `r` (Moore bound):
/// the smallest `k` with `moore_nodes(r, k) >= n`. Returns `None` when no
/// diameter suffices (e.g. `r <= 1` and `n` too large).
// dcn-lint: allow(budget-coverage) — the scan grows moore_nodes geometrically, terminating in O(log n) steps
pub fn min_diameter(r: u32, n: u64) -> Option<u32> {
    if n <= 1 {
        return Some(0);
    }
    if r == 0 {
        return None;
    }
    if r == 1 {
        return if n <= 2 { Some(1) } else { None };
    }
    let mut k = 1u32;
    // Diameter grows logarithmically (r >= 3) or linearly (r == 2); the
    // loop terminates well before k reaches n.
    while moore_nodes(r, k) < n as f64 {
        k += 1;
        if k as u64 > n {
            return None;
        }
    }
    Some(k)
}

/// Lemma 8.1: a lower bound on the number of switches at distance at least
/// `m` (`1 <= m <= d`) from any switch, in a topology with `n_switches`
/// switches of network degree `r`.
pub fn w_m(n_switches: f64, r: u32, m: u32) -> f64 {
    debug_assert!(m >= 1);
    let reachable_within = match r {
        0 => 0.0,
        1 => {
            if m >= 2 {
                1.0
            } else {
                0.0
            }
        }
        2 => 2.0 * (m as f64 - 1.0),
        _ => {
            let rf = r as f64;
            rf * ((rf - 1.0).powi(m as i32 - 1) - 1.0) / (rf - 2.0)
        }
    };
    n_switches - 1.0 - reachable_within
}

/// The denominator quantity `D = sum_{m=1}^{d} W_m` from Theorem 4.1,
/// where `d = min_diameter(r, n_switches)`. Returns `None` when the Moore
/// bound gives no finite diameter.
pub fn d_total(n_switches: f64, r: u32) -> Option<f64> {
    let d = min_diameter(r, n_switches.ceil() as u64)?;
    let mut total = 0.0;
    for m in 1..=d {
        total += w_m(n_switches, r, m);
    }
    Some(total)
}

/// Closed form of [`d_total`] as printed in Theorem 4.1 (valid for `r >= 3`):
/// `D = d (n - 1) - r/(r-2) * (((r-1)^d - 1)/(r-2) - d)`.
/// Exposed for testing the closed form against the summation.
pub fn d_total_closed_form(n_switches: f64, r: u32) -> Option<f64> {
    if r < 3 {
        return d_total(n_switches, r);
    }
    let d = min_diameter(r, n_switches.ceil() as u64)? as f64;
    let rf = r as f64;
    Some(
        d * (n_switches - 1.0)
            - rf / (rf - 2.0) * (((rf - 1.0).powf(d) - 1.0) / (rf - 2.0) - d),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn moore_small_cases() {
        // Degree 3, diameter 2: at most 1 + 3 + 6 = 10 (Petersen graph meets it).
        assert_eq!(moore_nodes(3, 2), 10.0);
        assert_eq!(moore_nodes(3, 1), 4.0);
        assert_eq!(moore_nodes(2, 3), 7.0); // cycle of 7
        assert_eq!(moore_nodes(5, 0), 1.0);
    }

    #[test]
    fn min_diameter_inverts_moore() {
        assert_eq!(min_diameter(3, 10), Some(2));
        assert_eq!(min_diameter(3, 11), Some(3));
        assert_eq!(min_diameter(3, 4), Some(1));
        assert_eq!(min_diameter(3, 1), Some(0));
        assert_eq!(min_diameter(2, 7), Some(3));
        assert_eq!(min_diameter(1, 2), Some(1));
        assert_eq!(min_diameter(1, 3), None);
        assert_eq!(min_diameter(0, 5), None);
    }

    #[test]
    fn w_m_first_level_counts_everyone_else() {
        // Every other switch is at distance >= 1.
        assert_eq!(w_m(100.0, 8, 1), 99.0);
        // At distance >= 2: everyone except the r direct neighbors.
        assert_eq!(w_m(100.0, 8, 2), 100.0 - 1.0 - 8.0);
    }

    #[test]
    fn w_positive_up_to_moore_diameter() {
        let n = 1000.0;
        let r = 8;
        let d = min_diameter(r, 1000).unwrap();
        for m in 1..=d {
            assert!(w_m(n, r, m) > 0.0, "W_{m} should be positive below d");
        }
    }

    #[test]
    fn closed_form_matches_sum() {
        for &(n, r) in &[(100.0, 8u32), (5000.0, 24), (37.0, 3), (1234.0, 10)] {
            let a = d_total(n, r).unwrap();
            let b = d_total_closed_form(n, r).unwrap();
            assert!(
                (a - b).abs() < 1e-6 * a.abs().max(1.0),
                "sum {a} vs closed form {b} for n={n} r={r}"
            );
        }
    }

    #[test]
    fn d_total_grows_with_n() {
        let a = d_total(100.0, 8).unwrap();
        let b = d_total(1000.0, 8).unwrap();
        assert!(b > a);
    }
}
