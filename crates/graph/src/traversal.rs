//! BFS traversal: single-source distances, shortest-path counting, and
//! eccentricity/diameter helpers.

use crate::csr::{Graph, NodeId};

impl Graph {
    /// Unweighted single-source shortest-path distances from `src`.
    /// Unreachable nodes get `u16::MAX`.
    // dcn-lint: allow(budget-coverage) — BFS visits each node once; bounded by n with no budget worth threading
    pub fn bfs_distances(&self, src: NodeId) -> Vec<u16> {
        let mut dist = vec![u16::MAX; self.n()];
        let mut queue = std::collections::VecDeque::with_capacity(self.n());
        dist[src as usize] = 0;
        queue.push_back(src);
        while let Some(u) = queue.pop_front() {
            let du = dist[u as usize];
            for (v, _) in self.neighbors(u) {
                if dist[v as usize] == u16::MAX {
                    dist[v as usize] = du + 1;
                    queue.push_back(v);
                }
            }
        }
        dist
    }

    /// BFS distances from `src`, reusing caller-provided scratch buffers to
    /// avoid repeated allocation in all-pairs loops. `dist` must have length
    /// `n` and is fully overwritten.
    // dcn-lint: allow(budget-coverage) — BFS visits each node once; bounded by n with no budget worth threading
    pub fn bfs_distances_into(&self, src: NodeId, dist: &mut [u16], queue: &mut Vec<NodeId>) {
        debug_assert_eq!(dist.len(), self.n());
        dist.fill(u16::MAX);
        queue.clear();
        dist[src as usize] = 0;
        queue.push(src);
        let mut head = 0;
        while head < queue.len() {
            let u = queue[head];
            head += 1;
            let du = dist[u as usize];
            for (v, _) in self.neighbors(u) {
                if dist[v as usize] == u16::MAX {
                    dist[v as usize] = du + 1;
                    queue.push(v);
                }
            }
        }
    }

    /// Number of distinct shortest paths from `src` to every node, saturating
    /// at `u64::MAX`. Parallel edges count as distinct paths, matching the
    /// intuition that each physical link provides an independent route.
    pub fn count_shortest_paths(&self, src: NodeId) -> Vec<u64> {
        let dist = self.bfs_distances(src);
        let mut count = vec![0u64; self.n()];
        count[src as usize] = 1;
        // Process nodes in increasing distance order.
        let mut order: Vec<NodeId> = (0..self.n() as NodeId).collect();
        order.sort_by_key(|&v| dist[v as usize]);
        for &u in &order {
            if dist[u as usize] == u16::MAX || u == src {
                continue;
            }
            let mut c: u64 = 0;
            for (v, _) in self.neighbors(u) {
                if dist[v as usize] + 1 == dist[u as usize] {
                    c = c.saturating_add(count[v as usize]);
                }
            }
            count[u as usize] = c;
        }
        count
    }

    /// Eccentricity of `src`: max distance to any reachable node.
    pub fn eccentricity(&self, src: NodeId) -> u16 {
        self.bfs_distances(src)
            .into_iter()
            .filter(|&d| d != u16::MAX)
            .max()
            .unwrap_or(0)
    }

    /// Exact diameter by running BFS from every node. `O(n (n + m))`.
    pub fn diameter(&self) -> u16 {
        let mut dist = vec![0u16; self.n()];
        let mut queue = Vec::with_capacity(self.n());
        let mut best = 0u16;
        for u in 0..self.n() as NodeId {
            self.bfs_distances_into(u, &mut dist, &mut queue);
            for &d in dist.iter() {
                if d != u16::MAX && d > best {
                    best = d;
                }
            }
        }
        best
    }

    /// Mean shortest-path length over all ordered reachable pairs `(u, v)`,
    /// `u != v`. Returns 0 for graphs with fewer than 2 nodes.
    pub fn average_path_length(&self) -> f64 {
        if self.n() < 2 {
            return 0.0;
        }
        let mut dist = vec![0u16; self.n()];
        let mut queue = Vec::with_capacity(self.n());
        let mut total: u64 = 0;
        let mut pairs: u64 = 0;
        for u in 0..self.n() as NodeId {
            self.bfs_distances_into(u, &mut dist, &mut queue);
            for (v, &d) in dist.iter().enumerate() {
                if v as NodeId != u && d != u16::MAX {
                    total += d as u64;
                    pairs += 1;
                }
            }
        }
        if pairs == 0 {
            0.0
        } else {
            total as f64 / pairs as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Path graph 0-1-2-3.
    fn path4() -> Graph {
        Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap()
    }

    /// 4-cycle.
    fn cycle4() -> Graph {
        Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap()
    }

    #[test]
    fn bfs_path_graph() {
        let g = path4();
        assert_eq!(g.bfs_distances(0), vec![0, 1, 2, 3]);
        assert_eq!(g.bfs_distances(2), vec![2, 1, 0, 1]);
    }

    #[test]
    fn bfs_unreachable() {
        let g = Graph::from_edges(3, &[(0, 1)]).unwrap();
        let d = g.bfs_distances(0);
        assert_eq!(d[2], u16::MAX);
    }

    #[test]
    fn bfs_into_matches_alloc_version() {
        let g = cycle4();
        let mut dist = vec![0u16; 4];
        let mut queue = Vec::new();
        for s in 0..4u32 {
            g.bfs_distances_into(s, &mut dist, &mut queue);
            assert_eq!(dist, g.bfs_distances(s));
        }
    }

    #[test]
    fn diameter_and_ecc() {
        assert_eq!(path4().diameter(), 3);
        assert_eq!(cycle4().diameter(), 2);
        assert_eq!(path4().eccentricity(1), 2);
    }

    #[test]
    fn avg_path_length_cycle() {
        // 4-cycle: each node has two nodes at distance 1, one at distance 2.
        // mean = (1+1+2)/3 = 4/3.
        let apl = cycle4().average_path_length();
        assert!((apl - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn count_shortest_paths_cycle() {
        let g = cycle4();
        let c = g.count_shortest_paths(0);
        // Opposite corner of a 4-cycle has 2 shortest paths.
        assert_eq!(c[2], 2);
        assert_eq!(c[1], 1);
        assert_eq!(c[0], 1);
    }

    #[test]
    fn count_shortest_paths_parallel_edges() {
        let g = Graph::from_edges(2, &[(0, 1), (0, 1)]).unwrap();
        let c = g.count_shortest_paths(0);
        assert_eq!(c[1], 2);
    }

    #[test]
    fn count_shortest_paths_grid() {
        // 2x2 grid is the 4-cycle; 3-node line has a single path.
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        assert_eq!(g.count_shortest_paths(0), vec![1, 1, 1]);
    }
}
