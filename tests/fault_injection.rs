//! Workspace-level fault-injection harness.
//!
//! Materializes every attack class in `dcn_guard::adversarial::CaseSpec`
//! into concrete topologies, traffic matrices, LPs, and budgets, and
//! drives them through the public solver entry points. The contract under
//! test is uniform: hostile input yields a **typed error** (or a sound
//! degraded result) — never a panic, never a hang, never a silent NaN.

use dcn::graph::ksp::yen;
use dcn::graph::{Graph, GraphError};
use dcn::guard::adversarial::{all_cases, hostile_floats, CaseSpec, Xorshift};
use dcn::guard::{Budget, BudgetError, CancelFlag};
use dcn::lp::{Cmp, LinearProgram, LpError, LpStatus};
use dcn::matching::hungarian_max;
use dcn::mcf::{ksp_mcf_throughput, throughput_with_fallback, Engine, McfError, PathSet};
use dcn::model::{Demand, ModelError, Topology, TrafficMatrix};
use dcn::partition::bisection;
use dcn::core::{tub, MatchingBackend};
use std::time::{Duration, Instant};
use dcn_cache::prelude::*;

/// A 6-cycle with one server per switch: small enough that every solver
/// finishes instantly under a sane budget, structured enough (two paths
/// per antipodal pair) that path enumeration and the LP are non-trivial.
fn ring6() -> Topology {
    let g = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)])
        .expect("ring6 edges are valid");
    Topology::new(g, vec![1; 6], "ring6").expect("ring6 builds")
}

fn antipodal_tm(topo: &Topology) -> TrafficMatrix {
    TrafficMatrix::permutation(topo, &[(0, 3), (3, 0), (1, 4), (4, 1), (2, 5), (5, 2)])
        .expect("antipodal permutation is valid")
}

/// An LP whose phase-2 simplex needs several pivots: maximize x0 + x1
/// subject to a small polytope. Used wherever a case needs "an LP that
/// does real work".
fn working_lp() -> LinearProgram {
    let mut lp = LinearProgram::new(2);
    lp.set_objective(&[(0, 1.0), (1, 1.0)]);
    lp.add_constraint(&[(0, 1.0), (1, 2.0)], Cmp::Le, 4.0);
    lp.add_constraint(&[(0, 2.0), (1, 1.0)], Cmp::Le, 4.0);
    lp
}

fn materialize_and_assert(case: CaseSpec) {
    let topo = ring6();
    match case {
        CaseSpec::NanDemand => {
            let err = TrafficMatrix::new(
                &topo,
                vec![Demand { src: 0, dst: 3, amount: f64::NAN }],
            )
            .unwrap_err();
            assert!(matches!(err, ModelError::InvalidDemand { .. }), "{err:?}");
        }
        CaseSpec::NegativeDemand => {
            let err = TrafficMatrix::new(
                &topo,
                vec![Demand { src: 0, dst: 3, amount: -1.0 }],
            )
            .unwrap_err();
            assert!(matches!(err, ModelError::InvalidDemand { .. }), "{err:?}");
        }
        CaseSpec::ZeroDemand => {
            let err = TrafficMatrix::new(
                &topo,
                vec![Demand { src: 0, dst: 3, amount: 0.0 }],
            )
            .unwrap_err();
            assert!(matches!(err, ModelError::InvalidDemand { .. }), "{err:?}");
        }
        CaseSpec::SelfLoopDemand => {
            let err = TrafficMatrix::new(
                &topo,
                vec![Demand { src: 2, dst: 2, amount: 1.0 }],
            )
            .unwrap_err();
            assert!(matches!(err, ModelError::InvalidDemand { .. }), "{err:?}");
        }
        CaseSpec::ZeroCapacityEdge => {
            // A path graph 0-1-2 whose second hop has zero capacity: the
            // only route for the demand is dead, so θ must come out 0 (or
            // a typed error) — not NaN, not a hang.
            let g = Graph::from_weighted_edges(3, &[(0, 1, 1.0), (1, 2, 0.0)])
                .expect("zero capacity is representable");
            let t = Topology::new(g, vec![1; 3], "deadlink").expect("builds");
            let tm = TrafficMatrix::permutation(&t, &[(0, 2)]).expect("valid tm");
            match ksp_mcf_throughput(&t, &tm, 4, Engine::Exact, &unlimited_ctx()) {
                Ok(r) => {
                    assert!(r.theta_lb.is_finite() && r.theta_lb.abs() < 1e-9, "{r:?}");
                }
                Err(e) => {
                    assert!(
                        matches!(e, McfError::Certificate(_) | McfError::SolverFailure(_)),
                        "{e:?}"
                    );
                }
            }
        }
        CaseSpec::SelfLoopEdge => {
            let err = Graph::from_edges(3, &[(0, 1), (1, 1)]).unwrap_err();
            assert_eq!(err, GraphError::SelfLoop { node: 1 });
        }
        CaseSpec::DisconnectedGraph => {
            let g = Graph::from_edges(4, &[(0, 1), (2, 3)]).expect("two components");
            let t = Topology::new(g, vec![1; 4], "split").expect("builds");
            let tm = TrafficMatrix::permutation(&t, &[(0, 2)]).expect("valid tm");
            let err = ksp_mcf_throughput(&t, &tm, 4, Engine::Exact, &unlimited_ctx()).unwrap_err();
            assert_eq!(err, McfError::NoPath { src: 0, dst: 2 });
        }
        CaseSpec::EmptyTraffic => {
            let tm = TrafficMatrix::new(&topo, Vec::new()).expect("empty tm is legal");
            let err = ksp_mcf_throughput(&topo, &tm, 4, Engine::Exact, &unlimited_ctx()).unwrap_err();
            assert_eq!(err, McfError::EmptyTraffic);
        }
        CaseSpec::DegenerateLp => {
            // Many redundant copies of the same binding constraint — the
            // classic cycling trap. Must reach Optimal under a finite
            // iteration cap, proving the solver does not cycle forever.
            let mut lp = LinearProgram::new(2);
            lp.set_objective(&[(0, 1.0), (1, 1.0)]);
            for _ in 0..24 {
                lp.add_constraint(&[(0, 1.0), (1, 1.0)], Cmp::Le, 1.0);
            }
            let sol = lp
                .solve(&Budget::unlimited().with_iter_cap(10_000))
                .expect("degenerate LP must terminate");
            assert_eq!(sol.status, LpStatus::Optimal);
            assert!((sol.objective - 1.0).abs() < 1e-9);
        }
        CaseSpec::InfeasibleLp => {
            let mut lp = LinearProgram::new(1);
            lp.set_objective(&[(0, 1.0)]);
            lp.add_constraint(&[(0, 1.0)], Cmp::Ge, 2.0);
            lp.add_constraint(&[(0, 1.0)], Cmp::Le, 1.0);
            let sol = lp
                .solve(&Budget::unlimited())
                .expect("infeasibility is a status, not an error");
            assert_eq!(sol.status, LpStatus::Infeasible);
        }
        CaseSpec::UnboundedLp => {
            let mut lp = LinearProgram::new(2);
            lp.set_objective(&[(0, 1.0)]);
            lp.add_constraint(&[(1, 1.0)], Cmp::Le, 1.0);
            let sol = lp
                .solve(&Budget::unlimited())
                .expect("unboundedness is a status, not an error");
            assert_eq!(sol.status, LpStatus::Unbounded);
        }
        CaseSpec::NearExpiredBudget => {
            let tm = antipodal_tm(&topo);
            let budget = Budget::unlimited().with_wall(Duration::from_nanos(1));
            let started = Instant::now();
            let err = ksp_mcf_throughput(&topo, &tm, 8, Engine::Exact, &nocache_ctx(&budget)).unwrap_err();
            assert!(
                matches!(err, McfError::Budget(BudgetError::DeadlineExceeded { .. })),
                "{err:?}"
            );
            // Termination tolerance: deadline plus at most one iteration,
            // generously bounded here.
            assert!(started.elapsed() < Duration::from_secs(5));
        }
        CaseSpec::TinyIterationCap => {
            let zero_ticks = Budget::unlimited().with_iter_cap(0);
            // Simplex: the first pivot already exceeds the cap.
            assert!(matches!(
                working_lp().solve(&zero_ticks),
                Err(LpError::Budget(BudgetError::IterationsExceeded { .. }))
            ));
            // Yen: the spur loop ticks before any extra path is found.
            assert!(matches!(
                yen(topo.graph(), 0, 3, 8, &zero_ticks),
                Err(BudgetError::IterationsExceeded { .. })
            ));
            // Hungarian: ticks per augmenting-path step.
            assert!(matches!(
                hungarian_max(4, |i, j| (i + j) as i64, &zero_ticks),
                Err(BudgetError::IterationsExceeded { .. })
            ));
            // FM bisection: exhaustion before the first completed try.
            assert!(matches!(
                bisection(&topo, 2, 11, &zero_ticks),
                Err(BudgetError::IterationsExceeded { .. })
            ));
        }
        CaseSpec::PreCancelled => {
            let flag = CancelFlag::new();
            flag.cancel();
            let budget = Budget::unlimited().with_cancel(flag);
            let tm = antipodal_tm(&topo);
            let err = ksp_mcf_throughput(&topo, &tm, 8, Engine::Exact, &nocache_ctx(&budget)).unwrap_err();
            assert!(
                matches!(err, McfError::Budget(BudgetError::Cancelled { .. })),
                "{err:?}"
            );
        }
    }
}

#[test]
fn every_attack_class_yields_typed_errors() {
    for &case in all_cases() {
        materialize_and_assert(case);
    }
}

#[test]
fn hostile_floats_never_panic_model_constructors() {
    let topo = ring6();
    for &v in &hostile_floats() {
        // Demands: only positive finite values may survive.
        match TrafficMatrix::new(&topo, vec![Demand { src: 0, dst: 3, amount: v }]) {
            Ok(_) => assert!(v.is_finite() && v > 0.0, "accepted hostile demand {v}"),
            Err(ModelError::InvalidDemand { .. }) => {}
            Err(e) => panic!("unexpected error kind for demand {v}: {e:?}"),
        }
        // Traffic scaling must not manufacture NaN demands that later
        // solvers choke on without a typed error.
        let tm = antipodal_tm(&topo).scaled(v);
        match ksp_mcf_throughput(&topo, &tm, 4, Engine::Exact, &unlimited_ctx()) {
            Ok(r) => assert!(r.theta_lb.is_finite(), "theta from scale {v}: {r:?}"),
            Err(e) => assert!(
                matches!(e, McfError::Certificate(_) | McfError::SolverFailure(_)),
                "scale {v}: {e:?}"
            ),
        }
    }
}

#[test]
fn hostile_floats_screened_out_of_lps() {
    for &v in &hostile_floats() {
        if v.is_finite() {
            continue;
        }
        // Poisoned objective.
        let mut lp = working_lp();
        lp.set_objective(&[(0, v)]);
        assert!(
            matches!(lp.solve(&Budget::unlimited()), Err(LpError::BadInput(_))),
            "objective {v} must be screened"
        );
        // Poisoned rhs.
        let mut lp = working_lp();
        lp.add_constraint(&[(0, 1.0)], Cmp::Le, v);
        assert!(
            matches!(lp.solve(&Budget::unlimited()), Err(LpError::BadInput(_))),
            "rhs {v} must be screened"
        );
        // Poisoned coefficient.
        let mut lp = working_lp();
        lp.add_constraint(&[(0, v)], Cmp::Le, 1.0);
        assert!(
            matches!(lp.solve(&Budget::unlimited()), Err(LpError::BadInput(_))),
            "coefficient {v} must be screened"
        );
    }
}

#[test]
fn fallback_chains_absorb_exhaustion_end_to_end() {
    let topo = ring6();
    let tm = antipodal_tm(&topo);
    // Simplex starved, FPTAS viable: the chain degrades instead of failing.
    let ps = PathSet::k_shortest(&topo, &tm, 8, &Budget::unlimited()).expect("paths");
    let r = throughput_with_fallback(&ps, 0.05, &Budget::unlimited().with_iter_cap(8))
        .expect("fallback absorbs the exhaustion");
    assert!(r.provenance.is_degraded());
    assert!(r.theta_lb.is_finite() && r.theta_ub.is_finite());
    // Hungarian starved: tub degrades to the greedy witness, still sound.
    let t = tub(
        &topo,
        MatchingBackend::Exact,
        &nocache_ctx(&Budget::unlimited().with_iter_cap(0)),
    )
    .expect("greedy fallback absorbs the exhaustion");
    assert!(t.fallback);
    assert!(t.bound.is_finite() && t.bound > 0.0);
}

#[test]
fn cancellation_mid_run_stops_promptly() {
    // Cancel from another thread while a (budgeted but roomy) solve runs
    // on an instance large enough to take a moment.
    let g = {
        let mut rng = Xorshift::new(5);
        // Random 6-regular-ish multigraph on 64 nodes, deduplicated.
        let mut edges = Vec::new();
        let mut seen = std::collections::HashSet::new();
        while edges.len() < 192 {
            let u = rng.next_below(64) as u32;
            let v = rng.next_below(64) as u32;
            if u != v && seen.insert((u.min(v), u.max(v))) {
                edges.push((u, v));
            }
        }
        Graph::from_edges(64, &edges).expect("random graph builds")
    };
    let topo = Topology::new(g, vec![2; 64], "rand64").expect("builds");
    let flag = CancelFlag::new();
    let budget = Budget::unlimited().with_cancel(flag.clone());
    let canceller = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(2));
        flag.cancel();
    });
    let started = Instant::now();
    // Either it finishes before the flag trips (tiny instance, fast box)
    // or it reports Cancelled — never a wedge.
    match tub(&topo, MatchingBackend::Exact, &nocache_ctx(&budget)) {
        Ok(t) => assert!(t.bound.is_finite()),
        Err(e) => assert!(format!("{e}").contains("cancelled"), "{e:?}"),
    }
    assert!(started.elapsed() < Duration::from_secs(30));
    canceller.join().expect("canceller thread");
}

// ---------------------------------------------------------------------------
// Fleet kill injection
//
// The process-level analogue of the solver attacks above: workers are
// SIGKILLed mid-cell (via the supervisor's injection hook and via lease
// expiry), the supervisor itself is SIGKILLed and a successor resumes
// from the queue directory, and a deliberately poisonous unit crashes
// every worker that touches it. The uniform contract: every variant ends
// with a merged outcome list byte-identical to an undisturbed serial run
// — or an explicit quarantine report, never a wedge and never a torn
// merge. Worker (and supervisor) processes are this test binary
// re-invoked against gated entry tests.

use dcn::fleet::{run_fleet, worker_main, FleetConfig, FleetReport, UnitOutcome, WorkUnit};
use dcn::obs::json::Json;
use std::path::{Path, PathBuf};

const FLEET_WORKER_ENV: &str = "DCN_FAULT_TEST_FLEET_WORKER";
const FLEET_SUPERVISOR_ENV: &str = "DCN_FAULT_TEST_FLEET_SUPERVISOR";

fn fleet_scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dcn-fault-fleet-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// `square` computes; `sleep_once` stalls only on its first attempt (so
/// a lease kill is survivable on retry); `abort` kills every worker that
/// claims it (the poison).
fn fleet_toy_solve(unit: &WorkUnit, attempt: u64) -> Result<Json, String> {
    let op = unit
        .payload
        .get("op")
        .and_then(Json::as_str)
        .ok_or("missing op")?;
    match op {
        "square" => {
            let x = unit
                .payload
                .get("x")
                .and_then(Json::as_u64)
                .ok_or("missing x")?;
            Ok(Json::obj([("sq", Json::Num((x * x) as f64))]))
        }
        "sleep_once" => {
            if attempt == 0 {
                std::thread::sleep(Duration::from_secs(30));
            }
            Ok(Json::obj([("survived_at", Json::Num(attempt as f64))]))
        }
        "sleep_ms" => {
            let ms = unit
                .payload
                .get("ms")
                .and_then(Json::as_u64)
                .ok_or("missing ms")?;
            std::thread::sleep(Duration::from_millis(ms));
            Ok(Json::obj([("slept", Json::Num(ms as f64))]))
        }
        "abort" => std::process::abort(),
        other => Err(format!("unknown op {other:?}")),
    }
}

/// Gated worker entrypoint; a no-op in the normal suite.
#[test]
fn fleet_worker_entry() {
    let Ok(root) = std::env::var(FLEET_WORKER_ENV) else {
        return;
    };
    worker_main(Path::new(&root), fleet_toy_solve).expect("fault-injection worker");
}

fn fleet_worker_cmd(root: &Path) -> std::process::Command {
    let mut c = std::process::Command::new(std::env::current_exe().expect("current_exe"));
    c.args(["fleet_worker_entry", "--exact", "--nocapture"]);
    c.env(FLEET_WORKER_ENV, root);
    c
}

fn fleet_cfg(root: &Path, workers: usize) -> FleetConfig {
    FleetConfig {
        workers,
        root: root.to_path_buf(),
        lease: Duration::from_secs(60),
        max_retries: 2,
        backoff_base: Duration::from_millis(10),
        poll: Duration::from_millis(10),
        inject_kill_after: None,
    }
}

/// Serializes a report's merged outcomes so variants can be compared
/// byte-for-byte against an undisturbed serial run.
fn merged_bytes(report: &FleetReport) -> String {
    let rows: Vec<Json> = report
        .outcomes
        .iter()
        .map(|o| match o {
            UnitOutcome::Ok(v) => Json::obj([("ok", v.clone())]),
            UnitOutcome::Err(e) => Json::obj([("err", Json::Str(e.clone()))]),
            UnitOutcome::Quarantined(r) => Json::obj([("quarantined", Json::Str(r.clone()))]),
        })
        .collect();
    Json::Arr(rows).to_string_pretty()
}

fn square_unit(i: u64) -> WorkUnit {
    WorkUnit {
        id: format!("cell-{i:02}"),
        payload: Json::obj([
            ("op", Json::Str("square".to_string())),
            ("x", Json::Num(i as f64)),
        ]),
    }
}

/// Runs the same unit list undisturbed at one worker and returns the
/// reference merge bytes.
fn serial_reference(name: &str, units: &[WorkUnit]) -> String {
    let root = fleet_scratch(name);
    let report = run_fleet(&fleet_cfg(&root, 1), units, &Budget::unlimited(), &|| {
        fleet_worker_cmd(&root)
    })
    .expect("serial reference run");
    let _ = std::fs::remove_dir_all(&root);
    merged_bytes(&report)
}

#[test]
fn fleet_worker_sigkilled_mid_cell_still_merges_identically() {
    // Sleepy cells keep the campaign alive long enough for the injected
    // kill to land while a worker is mid-cell (instant cells can drain
    // before the supervisor's kill condition is ever evaluated).
    let units: Vec<WorkUnit> = (0..8)
        .map(|i| {
            if i % 2 == 0 {
                square_unit(i)
            } else {
                WorkUnit {
                    id: format!("cell-{i:02}"),
                    payload: Json::obj([
                        ("op", Json::Str("sleep_ms".to_string())),
                        ("ms", Json::Num(120.0)),
                    ]),
                }
            }
        })
        .collect();
    let reference = serial_reference("sigkill-ref", &units);
    let root = fleet_scratch("sigkill");
    let mut cfg = fleet_cfg(&root, 2);
    // The supervisor SIGKILLs one of its own workers after the first
    // completed cell; whatever that worker held must be retried.
    cfg.inject_kill_after = Some(1);
    let report = run_fleet(&cfg, &units, &Budget::unlimited(), &|| fleet_worker_cmd(&root))
        .expect("injected-kill run");
    assert!(report.crashes >= 1, "the injected SIGKILL must be observed");
    assert_eq!(report.quarantined, 0);
    assert_eq!(merged_bytes(&report), reference);
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn fleet_lease_expiry_sigkills_stalled_worker_and_recovers() {
    let mut units: Vec<WorkUnit> = (0..4).map(square_unit).collect();
    units.insert(
        1,
        WorkUnit {
            id: "stall-first-attempt".to_string(),
            payload: Json::obj([("op", Json::Str("sleep_once".to_string()))]),
        },
    );
    let root = fleet_scratch("lease");
    let mut cfg = fleet_cfg(&root, 2);
    // The stalled cell sleeps 30s on attempt 0; a 300ms lease means the
    // supervisor SIGKILLs its worker and the retry (attempt 1) returns
    // instantly.
    cfg.lease = Duration::from_millis(300);
    let report = run_fleet(&cfg, &units, &Budget::unlimited(), &|| fleet_worker_cmd(&root))
        .expect("lease-kill run");
    assert!(report.lease_kills >= 1, "{report:?}");
    assert_eq!(report.quarantined, 0);
    match &report.outcomes[1] {
        UnitOutcome::Ok(v) => {
            assert_eq!(v.get("survived_at").and_then(Json::as_u64), Some(1))
        }
        other => panic!("stalled cell must survive its retry, got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&root);
}

/// Gated supervisor entrypoint for the kill-and-resume test: supervises
/// the slow unit list in a child process the parent can SIGKILL.
#[test]
fn fleet_supervisor_entry() {
    let Ok(root) = std::env::var(FLEET_SUPERVISOR_ENV) else {
        return;
    };
    let root = PathBuf::from(root);
    let units = slow_units();
    run_fleet(&fleet_cfg(&root, 2), &units, &Budget::unlimited(), &|| {
        fleet_worker_cmd(&root)
    })
    .expect("child supervisor");
}

fn slow_units() -> Vec<WorkUnit> {
    (0..8)
        .map(|i| WorkUnit {
            id: format!("slow-{i:02}"),
            payload: Json::obj([
                ("op", Json::Str("sleep_ms".to_string())),
                ("ms", Json::Num(150.0)),
            ]),
        })
        .collect()
}

#[test]
fn fleet_supervisor_sigkilled_and_resumed_recovers_solved_cells() {
    let units = slow_units();
    let root = fleet_scratch("resume");
    std::fs::create_dir_all(&root).expect("create queue root");
    let mut supervisor = std::process::Command::new(std::env::current_exe().expect("current_exe"))
        .args(["fleet_supervisor_entry", "--exact", "--nocapture"])
        .env(FLEET_SUPERVISOR_ENV, &root)
        .spawn()
        .expect("spawn child supervisor");
    // Wait until at least two cells are solved, then SIGKILL the
    // supervisor mid-campaign (its workers become orphans).
    let results = root.join("results");
    let deadline = Instant::now() + Duration::from_secs(30);
    while dcn::cache::scan_keys(&results, "fleet-result").len() < 2 {
        assert!(Instant::now() < deadline, "child supervisor made no progress");
        if let Some(status) = supervisor.try_wait().expect("try_wait") {
            panic!("child supervisor exited early: {status}");
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    supervisor.kill().expect("SIGKILL child supervisor");
    let _ = supervisor.wait();
    // A successor supervisor over the same queue directory recovers the
    // solved cells, re-queues whatever was claimed by the dead fleet's
    // workers, and completes the campaign.
    let report = run_fleet(&fleet_cfg(&root, 2), &units, &Budget::unlimited(), &|| {
        fleet_worker_cmd(&root)
    })
    .expect("successor supervisor");
    assert!(report.recovered >= 2, "{report:?}");
    assert_eq!(report.quarantined, 0);
    assert_eq!(merged_bytes(&report), serial_reference("resume-ref", &units));
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn fleet_poison_unit_yields_explicit_quarantine_report() {
    let mut units: Vec<WorkUnit> = (0..5).map(square_unit).collect();
    units.insert(
        3,
        WorkUnit {
            id: "poison".to_string(),
            payload: Json::obj([("op", Json::Str("abort".to_string()))]),
        },
    );
    // The poison quarantines identically at any worker count, so even
    // this variant's merge is byte-comparable to the serial run.
    let reference = serial_reference("poison-ref", &units);
    let root = fleet_scratch("poison");
    let report = run_fleet(&fleet_cfg(&root, 2), &units, &Budget::unlimited(), &|| {
        fleet_worker_cmd(&root)
    })
    .expect("poison run");
    assert_eq!(report.quarantined, 1);
    assert!(
        report.crashes >= 3,
        "poison must crash max_retries+1 workers: {report:?}"
    );
    assert!(matches!(&report.outcomes[3], UnitOutcome::Quarantined(_)));
    assert_eq!(merged_bytes(&report), reference);
    // The quarantine is also durable: the queue directory records the
    // unit and why it was pulled.
    let q = std::fs::read_to_string(root.join("quarantine").join("poison.json"))
        .expect("durable quarantine record");
    assert!(q.contains("attempts"), "{q}");
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn random_hostile_lps_terminate_under_budget() {
    // Fuzz-ish sweep: random small LPs with mixed constraint senses and
    // sign-varied coefficients. Every one must reach a status or a typed
    // error within the iteration cap — no panic, no spin.
    let mut rng = Xorshift::new(0xfau64);
    for case in 0..60 {
        let n = 1 + rng.next_below(4) as usize;
        let mut lp = LinearProgram::new(n);
        let obj: Vec<(usize, f64)> = (0..n)
            .map(|j| (j, rng.next_f64() * 4.0 - 2.0))
            .collect();
        lp.set_objective(&obj);
        let rows = 1 + rng.next_below(5);
        for _ in 0..rows {
            let coeffs: Vec<(usize, f64)> = (0..n)
                .map(|j| (j, rng.next_f64() * 4.0 - 2.0))
                .collect();
            let cmp = match rng.next_below(3) {
                0 => Cmp::Le,
                1 => Cmp::Ge,
                _ => Cmp::Eq,
            };
            let rhs = rng.next_f64() * 6.0 - 3.0;
            lp.add_constraint(&coeffs, cmp, rhs);
        }
        match lp.solve(&Budget::unlimited().with_iter_cap(50_000)) {
            Ok(sol) => {
                if sol.status == LpStatus::Optimal {
                    assert!(sol.objective.is_finite(), "case {case}: {sol:?}");
                }
            }
            Err(LpError::Budget(_)) | Err(LpError::Certificate(_)) => {}
            Err(e) => panic!("case {case}: unexpected error {e:?}"),
        }
    }
}
