//! Integration tests for the topology variants beyond the paper's core
//! evaluation: F10 (the paper's §4.1 conjecture) and Dragonfly (§7).

use dcn::core::{tub, MatchingBackend};
use dcn::mcf::{ecmp_throughput, ksp_mcf_throughput, Engine};
use dcn::model::TrafficMatrix;
use dcn::topo::{dragonfly, f10, fat_tree};
use rand::rngs::StdRng;
use rand::SeedableRng;
use dcn_cache::prelude::*;

#[test]
fn f10_conjecture_tub_is_one() {
    // The paper conjectures F10 has full throughput; tub agrees on every
    // buildable instance here.
    for k in [4usize, 6, 8] {
        let t = f10(k).unwrap();
        let b = tub(&t, MatchingBackend::Exact, &unlimited_ctx()).unwrap();
        assert!(
            (b.bound - 1.0).abs() < 1e-9,
            "f10(k={k}) tub = {}",
            b.bound
        );
    }
}

#[test]
fn f10_routes_permutations_like_fat_tree() {
    let f = f10(4).unwrap();
    let ft = fat_tree(4).unwrap();
    let mut rng = StdRng::seed_from_u64(9);
    for _ in 0..3 {
        let tm_f = TrafficMatrix::random_permutation(&f, &mut rng).unwrap();
        let th_f = ksp_mcf_throughput(&f, &tm_f, 16, Engine::Exact, &unlimited_ctx())
            .unwrap()
            .theta_lb;
        assert!(th_f >= 1.0 - 1e-9, "f10 θ = {th_f}");
        let tm_ft = TrafficMatrix::random_permutation(&ft, &mut rng).unwrap();
        let th_ft = ksp_mcf_throughput(&ft, &tm_ft, 16, Engine::Exact, &unlimited_ctx())
            .unwrap()
            .theta_lb;
        assert!(th_ft >= 1.0 - 1e-9);
    }
}

#[test]
fn f10_ecmp_also_full() {
    let f = f10(4).unwrap();
    let mut rng = StdRng::seed_from_u64(11);
    let tm = TrafficMatrix::random_permutation(&f, &mut rng).unwrap();
    let th = ecmp_throughput(&f, &tm).unwrap();
    assert!(th >= 1.0 - 1e-9, "f10 ecmp θ = {th}");
}

#[test]
fn dragonfly_tub_reflects_global_bottleneck() {
    // Balanced dragonfly a=4, h=2, p=2: worst-case pairs sit in different
    // groups (distance >= 2), and the single global link per group pair
    // caps the worst case well below 1 at full server load.
    let t = dragonfly(2, 4, 2).unwrap();
    let b = tub(&t, MatchingBackend::Exact, &unlimited_ctx()).unwrap();
    assert!(b.bound > 0.0 && b.bound.is_finite());
    // Sanity: the bound upper-bounds an actual adversarial routing result.
    let tm = b.traffic_matrix(&t).unwrap();
    let th = ksp_mcf_throughput(&t, &tm, 16, Engine::Exact, &unlimited_ctx())
        .unwrap()
        .theta_lb;
    assert!(th <= b.bound + 1e-9, "θ {th} > tub {}", b.bound);
}

#[test]
fn dragonfly_oversubscribed_at_high_p() {
    // Doubling servers per router halves the bound (denominator scales
    // with H; capacity fixed).
    let lo = tub(&dragonfly(1, 4, 2).unwrap(), MatchingBackend::Exact, &unlimited_ctx())
        .unwrap()
        .bound;
    let hi = tub(&dragonfly(2, 4, 2).unwrap(), MatchingBackend::Exact, &unlimited_ctx())
        .unwrap()
        .bound;
    assert!(
        (hi - lo / 2.0).abs() < 1e-9,
        "p=1: {lo}, p=2: {hi} (expected exactly half)"
    );
}
