//! Property-based tests (proptest) on the core invariants, across randomly
//! generated topologies and traffic.

use dcn::core::{tub, MatchingBackend};
use dcn::guard::prelude::*;
use dcn::graph::{ksp, DistMatrix, Graph};
use dcn::lp::{Cmp, LinearProgram, LpStatus};
use dcn::matching::{greedy_max, hungarian_max, improve_2swap};
use dcn::mcf::{ksp_mcf_throughput, Engine};
use dcn::model::{Topology, TrafficMatrix};
use dcn::topo::jellyfish;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use dcn_cache::prelude::*;

/// Strategy: a connected random regular graph spec (n, r).
fn regular_spec() -> impl Strategy<Value = (usize, usize, u32, u64)> {
    (8usize..40, 3usize..7, 1u32..5, any::<u64>()).prop_filter(
        "n*r even and r < n",
        |(n, r, _h, _s)| n * r % 2 == 0 && r < n,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// BFS distances satisfy the triangle inequality over edges and
    /// symmetry on undirected graphs.
    #[test]
    fn bfs_metric_properties((n, r, h, seed) in regular_spec()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let topo = jellyfish(n, r, h, &mut rng).unwrap();
        let g = topo.graph();
        let d = DistMatrix::all_pairs(g).unwrap();
        for u in 0..n as u32 {
            prop_assert_eq!(d.dist(u, u), 0);
            for v in 0..n as u32 {
                prop_assert_eq!(d.dist(u, v), d.dist(v, u));
            }
        }
        // Edge relaxation: adjacent nodes differ by at most 1 in distance
        // to any target.
        for &(a, b) in g.edges() {
            for t in 0..n as u32 {
                let da = d.dist(a, t) as i32;
                let db = d.dist(b, t) as i32;
                prop_assert!((da - db).abs() <= 1);
            }
        }
    }

    /// Yen's and the slack enumerator agree on path-length multisets, and
    /// lengths are sorted.
    #[test]
    fn ksp_engines_agree((n, r, h, seed) in regular_spec()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let topo = jellyfish(n, r, h, &mut rng).unwrap();
        let g = topo.graph().coalesced();
        let dst = (n - 1) as u32;
        let a = ksp::yen(&g, 0, dst, 12, &unlimited()).unwrap();
        let b = ksp::k_shortest_by_slack(&g, 0, dst, 12, u16::MAX, &unlimited()).unwrap();
        let la: Vec<usize> = a.iter().map(|p| p.len() - 1).collect();
        let lb: Vec<usize> = b.iter().map(|p| p.len() - 1).collect();
        prop_assert_eq!(&la, &lb);
        prop_assert!(la.windows(2).all(|w| w[0] <= w[1]));
    }

    /// tub soundness: the exact KSP-MCF throughput of the maximal
    /// permutation never exceeds the bound; greedy backends only loosen.
    #[test]
    fn tub_soundness((n, r, h, seed) in regular_spec()) {
        prop_assume!(n <= 24); // keep the exact LP affordable
        let mut rng = StdRng::seed_from_u64(seed);
        let topo = jellyfish(n, r, h, &mut rng).unwrap();
        let exact_b = tub(&topo, MatchingBackend::Exact, &unlimited_ctx()).unwrap();
        let greedy_b = tub(&topo, MatchingBackend::Greedy { improvement_passes: 2 }, &unlimited_ctx()).unwrap();
        prop_assert!(greedy_b.bound >= exact_b.bound - 1e-12);
        let tm = exact_b.traffic_matrix(&topo).unwrap();
        let th = ksp_mcf_throughput(&topo, &tm, 16, Engine::Exact, &unlimited_ctx()).unwrap().theta_lb;
        prop_assert!(th <= exact_b.bound + 1e-9,
            "θ {} > tub {}", th, exact_b.bound);
    }

    /// The FPTAS bracket always contains its own midpoint ordering and
    /// respects eps.
    #[test]
    fn fptas_bracket_valid((n, r, h, seed) in regular_spec()) {
        prop_assume!(n <= 28);
        let mut rng = StdRng::seed_from_u64(seed);
        let topo = jellyfish(n, r, h, &mut rng).unwrap();
        let tm = TrafficMatrix::random_permutation(&topo, &mut rng).unwrap();
        let res = ksp_mcf_throughput(&topo, &tm, 8, Engine::Fptas { eps: 0.1 }, &unlimited_ctx()).unwrap();
        prop_assert!(res.theta_lb <= res.theta_ub + 1e-12);
        prop_assert!(res.theta_lb > 0.0);
        prop_assert!((0.0..=1.0 + 1e-9).contains(&res.shortest_path_fraction));
    }

    /// Hungarian is optimal among: greedy, improved greedy, identity-ish
    /// permutations; and all produce valid permutations.
    #[test]
    fn matching_optimality(seed in any::<u64>(), n in 2usize..12) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mat: Vec<Vec<i64>> = (0..n)
            .map(|_| (0..n).map(|_| rand::Rng::gen_range(&mut rng, 0..100)).collect())
            .collect();
        let w = |i: usize, j: usize| mat[i][j];
        let h = hungarian_max(n, w, &unlimited()).unwrap();
        let mut g = greedy_max(n, w);
        improve_2swap(n, w, &mut g, 4);
        prop_assert!(h.is_permutation());
        prop_assert!(g.is_permutation());
        prop_assert!(g.total_weight <= h.total_weight);
        prop_assert_eq!(g.total_weight, g.weight_under(w));
    }

    /// Random permutation TMs are saturated-hose and survive scaling.
    #[test]
    fn traffic_matrix_hose_invariants((n, r, h, seed) in regular_spec()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let topo = jellyfish(n, r, h, &mut rng).unwrap();
        let tm = TrafficMatrix::random_permutation(&topo, &mut rng).unwrap();
        tm.check_hose(&topo).unwrap();
        prop_assert!(tm.is_permutation(&topo));
        prop_assert!((tm.total() - topo.n_servers() as f64).abs() < 1e-6);
        let half = tm.scaled(0.5);
        half.check_hose(&topo).unwrap();
        prop_assert!((half.total() - tm.total() / 2.0).abs() < 1e-9);
    }

    /// LP solver: for random feasible-by-construction LPs, the optimum
    /// respects every constraint.
    #[test]
    fn lp_solution_feasible(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = rand::Rng::gen_range(&mut rng, 1..5usize);
        let m = rand::Rng::gen_range(&mut rng, 1..6usize);
        let mut lp = LinearProgram::new(n);
        let obj: Vec<(usize, f64)> = (0..n)
            .map(|j| (j, rand::Rng::gen_range(&mut rng, 0.0..3.0)))
            .collect();
        lp.set_objective(&obj);
        let mut rows = Vec::new();
        for _ in 0..m {
            let coeffs: Vec<(usize, f64)> = (0..n)
                .map(|j| (j, rand::Rng::gen_range(&mut rng, 0.1..2.0)))
                .collect();
            let rhs = rand::Rng::gen_range(&mut rng, 0.5..10.0);
            lp.add_constraint(&coeffs, Cmp::Le, rhs);
            rows.push((coeffs, rhs));
        }
        let sol = lp.solve(&unlimited()).unwrap();
        prop_assert_eq!(sol.status, LpStatus::Optimal);
        for (coeffs, rhs) in rows {
            let lhs: f64 = coeffs.iter().map(|&(j, c)| c * sol.x[j]).sum();
            prop_assert!(lhs <= rhs + 1e-7, "constraint violated: {} > {}", lhs, rhs);
        }
        prop_assert!(sol.x.iter().all(|&v| v >= -1e-9));
    }

    /// Failure injection removes exactly the requested links and keeps
    /// server placement.
    #[test]
    fn failure_injection_counts((n, r, h, seed) in regular_spec()) {
        prop_assume!(r >= 4);
        let mut rng = StdRng::seed_from_u64(seed);
        let topo = jellyfish(n, r, h, &mut rng).unwrap();
        let m0 = topo.graph().m();
        if let Ok(failed) = dcn::topo::fail_random_links(&topo, 0.1, &mut rng) {
            let expect = m0 - (m0 as f64 * 0.1).round() as usize;
            prop_assert_eq!(failed.graph().m(), expect);
            prop_assert_eq!(failed.n_servers(), topo.n_servers());
            prop_assert!(failed.graph().is_connected());
        }
    }
}

/// Non-proptest sanity: Graph::without_edges never panics on extremes.
#[test]
fn without_all_edges() {
    let g = Graph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
    let empty = g.without_edges(&[0, 1]);
    assert_eq!(empty.m(), 0);
    let t = Topology::new(g, vec![1; 3], "t").unwrap();
    assert_eq!(t.n_servers(), 3);
}
