//! Property tests for the systems layered on the core bound: the Clos
//! builder's analytics, serialization, workloads, routing models, and the
//! flow-level simulator.

use dcn::mcf::{ecmp_throughput, vlb_throughput};
use dcn::model::workload;
use dcn::model::{Topology, TrafficMatrix};
use dcn::sim::{flows_from_tm, max_min_rates, run_to_completion, PathPolicy, SizedFlow};
use dcn::topo::{folded_clos, jellyfish, ClosParams};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn jelly_spec() -> impl Strategy<Value = (usize, usize, u32, u64)> {
    (10usize..32, 4usize..7, 2u32..5, any::<u64>())
        .prop_filter("parity", |(n, r, _h, _s)| n * r % 2 == 0 && r < n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The Clos builder exactly matches its analytic counts and never
    /// exceeds the switch radix.
    #[test]
    fn clos_analytics_match_built(
        radix in (2usize..7).prop_map(|h| h * 2),
        layers in 2usize..4,
        pods_frac in 0.2f64..1.0,
    ) {
        let top_pods = ((radix as f64 * pods_frac) as usize).max(2);
        let p = ClosParams {
            radix,
            layers,
            top_pods,
            spine_uplink_fraction: 1.0,
            leaf_servers: 0,
        };
        let t = folded_clos(p).unwrap();
        prop_assert_eq!(t.n_servers(), p.n_servers());
        prop_assert_eq!(t.n_switches() as u64, p.n_switches());
        for u in 0..t.n_switches() as u32 {
            prop_assert!(t.used_ports(u) <= radix as f64 + 1e-9,
                "switch {} uses {} > radix {}", u, t.used_ports(u), radix);
        }
        prop_assert!(t.graph().is_connected());
    }

    /// JSON round trip preserves everything.
    #[test]
    fn topology_json_round_trip((n, r, h, seed) in jelly_spec()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let t = jellyfish(n, r, h, &mut rng).unwrap();
        let back = Topology::from_json(&t.to_json()).unwrap();
        prop_assert_eq!(back.name(), t.name());
        prop_assert_eq!(back.servers(), t.servers());
        prop_assert_eq!(back.graph().edges(), t.graph().edges());
    }

    /// Workload generators always emit hose-feasible traffic.
    #[test]
    fn workloads_are_hose_feasible((n, r, h, seed) in jelly_spec()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let t = jellyfish(n, r, h, &mut rng).unwrap();
        let tms = vec![
            workload::stride_permutation(&t, 1 + (seed as usize % (n - 1))).unwrap(),
            workload::hotspot(&t, 2, 0.6, &mut rng).unwrap(),
            workload::locality_mix(&t, 0.5, &mut rng).unwrap(),
            workload::elephant_mice(&t, n / 4, 0.7, &mut rng).unwrap(),
        ];
        for tm in tms {
            tm.check_hose(&t).unwrap();
            prop_assert!(tm.total() > 0.0);
        }
    }

    /// Fluid routing models never beat capacity trivia: θ under ECMP/VLB
    /// is positive and finite on connected expanders, and scales linearly
    /// with the traffic matrix.
    #[test]
    fn routing_models_scale_linearly((n, r, h, seed) in jelly_spec()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let t = jellyfish(n, r, h, &mut rng).unwrap();
        let tm = TrafficMatrix::random_permutation(&t, &mut rng).unwrap();
        let half = tm.scaled(0.5);
        for f in [ecmp_throughput, vlb_throughput] {
            let a = f(&t, &tm).unwrap();
            let b = f(&t, &half).unwrap();
            prop_assert!(a.is_finite() && a > 0.0);
            prop_assert!((b - 2.0 * a).abs() < 1e-6 * b.max(1.0),
                "halving demand must double θ: {} vs {}", a, b);
        }
    }

    /// The max-min allocation respects capacities and demands, and its
    /// fairness index is in (0, 1].
    #[test]
    fn max_min_invariants((n, r, h, seed) in jelly_spec()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let t = jellyfish(n, r, h, &mut rng).unwrap();
        let tm = TrafficMatrix::random_permutation(&t, &mut rng).unwrap();
        let flows = flows_from_tm(&tm);
        let routed = PathPolicy::EcmpHash.route_all(&t, &flows, seed).unwrap();
        let alloc = max_min_rates(&t, &routed);
        prop_assert!(alloc.max_utilization() <= 1.0 + 1e-6);
        for (f, &rate) in routed.iter().zip(alloc.rates.iter()) {
            prop_assert!(rate >= 0.0);
            prop_assert!(rate <= f.flow.demand + 1e-9);
        }
        let jain = alloc.jain_index();
        prop_assert!(jain > 0.0 && jain <= 1.0 + 1e-9);
    }

    /// FCT sanity: makespan at least the largest size (rates are capped by
    /// unit demand) and at least the ideal completion of every flow.
    #[test]
    fn fct_lower_bounds((n, r, h, seed) in jelly_spec()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let t = jellyfish(n, r, h, &mut rng).unwrap();
        let tm = TrafficMatrix::random_permutation(&t, &mut rng).unwrap();
        let flows = flows_from_tm(&tm);
        let routed = PathPolicy::KspStripe { k: 4 }.route_all(&t, &flows, seed).unwrap();
        let sized: Vec<SizedFlow> = routed
            .into_iter()
            .enumerate()
            .map(|(i, routed)| SizedFlow { routed, size: 0.5 + (i % 4) as f64 })
            .collect();
        let max_size = sized.iter().map(|f| f.size).fold(0.0f64, f64::max);
        let report = run_to_completion(&t, &sized);
        prop_assert!(report.makespan >= max_size - 1e-9,
            "makespan {} < largest flow {}", report.makespan, max_size);
        for (f, o) in sized.iter().zip(report.outcomes.iter()) {
            prop_assert!(o.fct + 1e-9 >= f.size, "fct {} < size {}", o.fct, f.size);
            prop_assert!(o.slowdown >= 1.0 - 1e-9);
        }
    }
}

/// VLB's oblivious guarantee on uniform uni-regular topologies:
/// θ >= (R - H) / 2H within simulation tolerance (here via the fluid
/// model, which is exact).
#[test]
fn vlb_guarantee_on_expander() {
    let mut rng = StdRng::seed_from_u64(77);
    // Network degree 8, H = 4: guarantee θ >= 8 / (2*4) = 1.0... the
    // classical bound assumes direct+indirect optimal splitting; pure VLB
    // (all traffic indirect) achieves half of that. Check the weaker pure
    // bound: θ >= (R - H) / (2H) * (1/2) is loose; assert θ positive and
    // at least 0.2 across seeds instead, plus obliviousness.
    let t = jellyfish(24, 8, 4, &mut rng).unwrap();
    let mut thetas = Vec::new();
    for _ in 0..4 {
        let tm = TrafficMatrix::random_permutation(&t, &mut rng).unwrap();
        thetas.push(vlb_throughput(&t, &tm).unwrap());
    }
    let min = thetas.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = thetas.iter().cloned().fold(0.0f64, f64::max);
    assert!(min > 0.2, "vlb θ too small: {thetas:?}");
    assert!(
        max - min < 0.05 * max,
        "vlb should be near-oblivious: {thetas:?}"
    );
}
