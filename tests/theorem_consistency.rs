//! Cross-crate integration tests: the paper's theorems must be mutually
//! consistent on concrete topologies.
//!
//! The chain checked here, for every generated instance:
//!
//! `Theorem 8.4 lower <= exact θ(T) <= tub (Thm 2.2) <= universal (Thm 4.1)`
//!
//! with `T` the maximal permutation, plus the Clos full-throughput claim
//! and the Theorem 2.1 permutation-dominance property.

use dcn::core::lower::throughput_lower_bound;
use dcn::core::universal::{universal_tub, UniRegularParams};
use dcn::core::{tub, MatchingBackend};
use dcn::mcf::{ksp_mcf_throughput, Engine};
use dcn::model::TrafficMatrix;
use dcn::topo::{fat_tree, jellyfish, xpander};
use rand::rngs::StdRng;
use rand::SeedableRng;
use dcn_cache::prelude::*;

#[test]
fn bound_chain_on_jellyfish_instances() {
    let mut rng = StdRng::seed_from_u64(1);
    for (n, r, h) in [(16usize, 4usize, 3u32), (24, 5, 4), (40, 6, 4)] {
        let topo = jellyfish(n, r, h, &mut rng).unwrap();
        let ub = tub(&topo, MatchingBackend::Exact, &unlimited_ctx()).unwrap();
        let tm = ub.traffic_matrix(&topo).unwrap();
        let lower = throughput_lower_bound(&topo, &tm, 1).unwrap();
        let exact = ksp_mcf_throughput(&topo, &tm, 24, Engine::Exact, &unlimited_ctx())
            .unwrap()
            .theta_lb;
        let universal = universal_tub(UniRegularParams {
            n_servers: topo.n_servers(),
            radix: (r as u32) + h,
            h,
        })
        .unwrap();
        assert!(
            lower <= exact + 1e-9,
            "n={n}: lower {lower} > exact {exact}"
        );
        assert!(
            exact <= ub.bound + 1e-9,
            "n={n}: exact {exact} > tub {}",
            ub.bound
        );
        assert!(
            ub.bound <= universal + 1e-9,
            "n={n}: tub {} > universal {universal}",
            ub.bound
        );
    }
}

#[test]
fn fptas_brackets_exact_on_all_families() {
    let mut rng = StdRng::seed_from_u64(2);
    let topos = vec![
        jellyfish(20, 5, 4, &mut rng).unwrap(),
        xpander(4, 5, 4, &mut rng).unwrap(),
        fat_tree(4).unwrap(),
    ];
    for topo in topos {
        let ub = tub(&topo, MatchingBackend::Exact, &unlimited_ctx()).unwrap();
        let tm = ub.traffic_matrix(&topo).unwrap();
        let exact = ksp_mcf_throughput(&topo, &tm, 16, Engine::Exact, &unlimited_ctx())
            .unwrap()
            .theta_lb;
        let approx = ksp_mcf_throughput(&topo, &tm, 16, Engine::Fptas { eps: 0.05 }, &unlimited_ctx()).unwrap();
        assert!(
            approx.theta_lb <= exact + 1e-9 && exact <= approx.theta_ub + 1e-9,
            "{}: [{}, {}] misses {}",
            topo.name(),
            approx.theta_lb,
            approx.theta_ub,
            exact
        );
    }
}

#[test]
fn clos_supports_every_permutation_at_full_rate() {
    // §4.1: Clos supports every permutation traffic matrix at θ >= 1, and
    // its tub is exactly 1.
    let topo = fat_tree(4).unwrap();
    let ub = tub(&topo, MatchingBackend::Exact, &unlimited_ctx()).unwrap();
    assert!((ub.bound - 1.0).abs() < 1e-9);
    let mut rng = StdRng::seed_from_u64(3);
    for _ in 0..5 {
        let tm = TrafficMatrix::random_permutation(&topo, &mut rng).unwrap();
        let th = ksp_mcf_throughput(&topo, &tm, 16, Engine::Exact, &unlimited_ctx())
            .unwrap()
            .theta_lb;
        assert!(th >= 1.0 - 1e-9, "clos θ = {th} for a permutation");
    }
}

#[test]
fn maximal_permutation_is_near_worst_case() {
    // §3.1 methodology: the maximal permutation is *near* worst-case — it
    // maximizes the TUB denominator (a proxy for difficulty), not MCF
    // throughput itself, so a random permutation can undercut it by a few
    // percent on small instances. Assert the trend with a 5% relative
    // slack rather than exact dominance.
    let mut rng = StdRng::seed_from_u64(4);
    let topo = jellyfish(24, 5, 4, &mut rng).unwrap();
    let ub = tub(&topo, MatchingBackend::Exact, &unlimited_ctx()).unwrap();
    let worst_tm = ub.traffic_matrix(&topo).unwrap();
    let worst = ksp_mcf_throughput(&topo, &worst_tm, 24, Engine::Exact, &unlimited_ctx())
        .unwrap()
        .theta_lb;
    for _ in 0..5 {
        let tm = TrafficMatrix::random_permutation(&topo, &mut rng).unwrap();
        let th = ksp_mcf_throughput(&topo, &tm, 24, Engine::Exact, &unlimited_ctx())
            .unwrap()
            .theta_lb;
        assert!(
            worst <= th * 1.05 + 1e-6,
            "maximal permutation ({worst}) beat a random one ({th}) by more than 5%"
        );
    }
}

#[test]
fn theorem21_convex_combination_dominance() {
    // Theorem 2.1's consequence: the throughput of any saturated-hose TM
    // (a convex combination of permutations) is at least the worst
    // permutation throughput.
    let mut rng = StdRng::seed_from_u64(5);
    let topo = jellyfish(16, 4, 3, &mut rng).unwrap();
    let ub = tub(&topo, MatchingBackend::Exact, &unlimited_ctx()).unwrap();
    let worst_tm = ub.traffic_matrix(&topo).unwrap();
    let worst = ksp_mcf_throughput(&topo, &worst_tm, 16, Engine::Exact, &unlimited_ctx())
        .unwrap()
        .theta_lb;
    for _ in 0..3 {
        let mix = TrafficMatrix::random_hose(&topo, 3, &mut rng).unwrap();
        let th = ksp_mcf_throughput(&topo, &mix, 16, Engine::Exact, &unlimited_ctx())
            .unwrap()
            .theta_lb;
        assert!(
            th >= worst - 1e-6,
            "hose mix θ = {th} below worst permutation {worst}"
        );
    }
}

#[test]
fn expansion_never_raises_tub_noticeably() {
    // §5.1: growing a uni-regular topology at fixed H cannot improve the
    // worst case (modulo small randomness).
    let mut rng = StdRng::seed_from_u64(6);
    let topo = jellyfish(30, 5, 4, &mut rng).unwrap();
    let before = tub(&topo, MatchingBackend::Exact, &unlimited_ctx()).unwrap().bound.min(1.0);
    let bigger = dcn::topo::expand_by_rewiring(&topo, 30, 4, &mut rng).unwrap();
    let after = tub(&bigger, MatchingBackend::Exact, &unlimited_ctx()).unwrap().bound.min(1.0);
    assert!(after <= before + 0.08, "expansion raised tub {before} -> {after}");
}
